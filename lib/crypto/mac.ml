(* SHA-1-based message authentication.

   The paper (section 3.1.3) MACs the length and plaintext of each RPC
   message under a 32-byte key pulled from the ARC4 stream.  We use
   HMAC-SHA-1 (Bellare-Canetti-Krawczyk) as the SHA-1-based MAC; the
   paper notes the exact MAC construction is an implementation artifact
   that "could be swapped out ... without affecting the main claims".

   A [schedule] caches the per-key work: the inner and outer SHA-1
   contexts are compressed over ipad/opad exactly once, then cloned per
   message — so a message MAC costs two context copies and the message
   blocks, not two key-block recompressions plus three key-sized
   allocations. *)

let block_size = 64
let mac_size = Sha1.digest_size

type schedule = { inner : Sha1.ctx; outer : Sha1.ctx }

let schedule ~(key : string) : schedule =
  let key = if String.length key > block_size then Sha1.digest key else key in
  let klen = String.length key in
  (* One pad block, built in place: key xor ipad, then flipped to
     key xor opad (0x36 lxor 0x5c = 0x6a). *)
  let pad = Bytes.make block_size '\x36' in
  for i = 0 to klen - 1 do
    Bytes.set pad i (Char.chr (Char.code (String.unsafe_get key i) lxor 0x36))
  done;
  let inner = Sha1.init () in
  Sha1.feed_bytes inner pad ~off:0 ~len:block_size;
  for i = 0 to block_size - 1 do
    Bytes.set pad i (Char.chr (Char.code (Bytes.unsafe_get pad i) lxor 0x6a))
  done;
  let outer = Sha1.init () in
  Sha1.feed_bytes outer pad ~off:0 ~len:block_size;
  { inner; outer }

(* Finish an inner context through the outer pass, writing the tag at
   [dst_off]. *)
let finish (s : schedule) (inner : Sha1.ctx) (dst : Bytes.t) ~(dst_off : int) : unit =
  let scratch = Bytes.create mac_size in
  Sha1.digest_into inner scratch ~off:0;
  let outer = Sha1.copy s.outer in
  Sha1.feed_bytes outer scratch ~off:0 ~len:mac_size;
  Sha1.digest_into outer dst ~off:dst_off

let hmac_sched (s : schedule) (message : string) : string =
  let c = Sha1.copy s.inner in
  Sha1.update c message;
  let out = Bytes.create mac_size in
  finish s c out ~dst_off:0;
  Bytes.unsafe_to_string out

let hmac ~(key : string) (message : string) : string = hmac_sched (schedule ~key) message

(* MAC over [len] buffer bytes at [off], the tag written in place at
   [dst_off] — the single-buffer channel path: for a frame whose first
   4 + n bytes are the big-endian length and the plaintext, this is
   exactly [of_message] with no copies. *)
let mac_into (s : schedule) (buf : Bytes.t) ~(off : int) ~(len : int) ~(dst : Bytes.t)
    ~(dst_off : int) : unit =
  if dst_off < 0 || dst_off + mac_size > Bytes.length dst then invalid_arg "Mac.mac_into";
  let c = Sha1.copy s.inner in
  Sha1.feed_bytes c buf ~off ~len;
  finish s c dst ~dst_off

(* The SFS traffic MAC covers the message length then the bytes, so a
   truncation cannot slide one message's tail into the next. *)
let of_message_sched (s : schedule) (message : string) : string =
  let c = Sha1.copy s.inner in
  Sha1.update c (Sfs_util.Bytesutil.be32_of_int (String.length message));
  Sha1.update c message;
  let out = Bytes.create mac_size in
  finish s c out ~dst_off:0;
  Bytes.unsafe_to_string out

let of_message ~(key : string) (message : string) : string =
  of_message_sched (schedule ~key) message

let verify_sched (s : schedule) ~(tag : string) (message : string) : bool =
  Sfs_util.Bytesutil.ct_equal tag (of_message_sched s message)

let verify ~(key : string) ~(tag : string) (message : string) : bool =
  verify_sched (schedule ~key) ~tag message
