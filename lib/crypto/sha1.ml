(* SHA-1 (FIPS 180-1).

   SFS assumes SHA-1 behaves like a random oracle (paper section 3.1.3):
   it derives HostIDs, session keys, AuthIDs, the MAC and the PRNG from
   it.  The compression function is the hot path of the whole system:
   it runs fully unrolled on unboxed int32 locals (see [compress]),
   and the [feed_bytes]/[digest_into] entry points let callers hash
   and emit directly from/to wire buffers with no staging copies. *)

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  block : Bytes.t; (* 64-byte staging buffer *)
  mutable used : int; (* bytes currently staged *)
  mutable length : int64; (* total message bytes *)
}

let mask32 = 0xFFFFFFFF

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    block = Bytes.create 64;
    used = 0;
    length = 0L;
  }

(* Clone a running context: the basis of the cached HMAC schedules
   (Mac.schedule), which resume from a pre-fed key block instead of
   recompressing it per message. *)
let copy (c : ctx) : ctx =
  {
    h0 = c.h0;
    h1 = c.h1;
    h2 = c.h2;
    h3 = c.h3;
    h4 = c.h4;
    block = Bytes.copy c.block;
    used = c.used;
    length = c.length;
  }

(* The compression core runs on [int32], not tagged [int]: the
   compiler unboxes local int32 arithmetic into genuine 32-bit
   registers, so rotates are two shifts and an or with no tag fix-ups
   and no masking (int32 wraps naturally).  On tagged ints every shift
   pays untag/retag and every round pays a mask; measured, the int32
   core is nearly twice as fast. *)
let ( +% ) = Int32.add

let[@inline] rotl (x : int32) (n : int) : int32 =
  Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

(* The values of [c.h0..c.h4] are kept canonical: 0 .. 2^32-1. *)
let[@inline] to_u32 (x : int32) : int = Int32.to_int x land mask32

(* One 512-bit block at [off] in [buf].  The caller guarantees
   [off + 64 <= Bytes.length buf]; everything inside is unsafe.

   Fully unrolled, mechanically generated (the 5-round variable
   rotation repeats 16 times, with the 16-word schedule kept in
   let-bound locals rebound in a rolling window instead of an 80-entry
   array).  Every intermediate is an immutable int32 let, which the
   compiler keeps in registers: no schedule stores, no tag fix-ups, no
   masking.  Do not hand-edit the round lines; regenerate or derive
   them from the pattern. *)
let compress (st : ctx) (buf : Bytes.t) (off : int) =
  (* 16 schedule words, loaded big-endian. *)
  let w0 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 0)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 3))) in
  let w1 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 4)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 5)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 6)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 7))) in
  let w2 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 8)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 9)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 10)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 11))) in
  let w3 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 12)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 13)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 14)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 15))) in
  let w4 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 16)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 17)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 18)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 19))) in
  let w5 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 20)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 21)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 22)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 23))) in
  let w6 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 24)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 25)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 26)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 27))) in
  let w7 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 28)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 29)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 30)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 31))) in
  let w8 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 32)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 33)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 34)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 35))) in
  let w9 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 36)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 37)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 38)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 39))) in
  let w10 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 40)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 41)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 42)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 43))) in
  let w11 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 44)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 45)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 46)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 47))) in
  let w12 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 48)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 49)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 50)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 51))) in
  let w13 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 52)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 53)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 54)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 55))) in
  let w14 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 56)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 57)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 58)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 59))) in
  let w15 = Int32.of_int ((Char.code (Bytes.unsafe_get buf (off + 60)) lsl 24)
    lor (Char.code (Bytes.unsafe_get buf (off + 61)) lsl 16)
    lor (Char.code (Bytes.unsafe_get buf (off + 62)) lsl 8)
    lor Char.code (Bytes.unsafe_get buf (off + 63))) in
  let a = Int32.of_int st.h0 in
  let b = Int32.of_int st.h1 in
  let c = Int32.of_int st.h2 in
  let d = Int32.of_int st.h3 in
  let e = Int32.of_int st.h4 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logand (Int32.lognot b) d)) +% e +% w0 +% 0x5A827999l in
  let b = rotl b 30 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logand (Int32.lognot a) c)) +% d +% w1 +% 0x5A827999l in
  let a = rotl a 30 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logand (Int32.lognot e) b)) +% c +% w2 +% 0x5A827999l in
  let e = rotl e 30 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logand (Int32.lognot d) a)) +% b +% w3 +% 0x5A827999l in
  let d = rotl d 30 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logand (Int32.lognot c) e)) +% a +% w4 +% 0x5A827999l in
  let c = rotl c 30 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logand (Int32.lognot b) d)) +% e +% w5 +% 0x5A827999l in
  let b = rotl b 30 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logand (Int32.lognot a) c)) +% d +% w6 +% 0x5A827999l in
  let a = rotl a 30 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logand (Int32.lognot e) b)) +% c +% w7 +% 0x5A827999l in
  let e = rotl e 30 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logand (Int32.lognot d) a)) +% b +% w8 +% 0x5A827999l in
  let d = rotl d 30 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logand (Int32.lognot c) e)) +% a +% w9 +% 0x5A827999l in
  let c = rotl c 30 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logand (Int32.lognot b) d)) +% e +% w10 +% 0x5A827999l in
  let b = rotl b 30 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logand (Int32.lognot a) c)) +% d +% w11 +% 0x5A827999l in
  let a = rotl a 30 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logand (Int32.lognot e) b)) +% c +% w12 +% 0x5A827999l in
  let e = rotl e 30 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logand (Int32.lognot d) a)) +% b +% w13 +% 0x5A827999l in
  let d = rotl d 30 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logand (Int32.lognot c) e)) +% a +% w14 +% 0x5A827999l in
  let c = rotl c 30 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logand (Int32.lognot b) d)) +% e +% w15 +% 0x5A827999l in
  let b = rotl b 30 in
  let w0 = rotl (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logand (Int32.lognot a) c)) +% d +% w0 +% 0x5A827999l in
  let a = rotl a 30 in
  let w1 = rotl (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logand (Int32.lognot e) b)) +% c +% w1 +% 0x5A827999l in
  let e = rotl e 30 in
  let w2 = rotl (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logand (Int32.lognot d) a)) +% b +% w2 +% 0x5A827999l in
  let d = rotl d 30 in
  let w3 = rotl (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logand (Int32.lognot c) e)) +% a +% w3 +% 0x5A827999l in
  let c = rotl c 30 in
  let w4 = rotl (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w4 +% 0x6ED9EBA1l in
  let b = rotl b 30 in
  let w5 = rotl (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w5 +% 0x6ED9EBA1l in
  let a = rotl a 30 in
  let w6 = rotl (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w6 +% 0x6ED9EBA1l in
  let e = rotl e 30 in
  let w7 = rotl (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w7 +% 0x6ED9EBA1l in
  let d = rotl d 30 in
  let w8 = rotl (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w8 +% 0x6ED9EBA1l in
  let c = rotl c 30 in
  let w9 = rotl (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w9 +% 0x6ED9EBA1l in
  let b = rotl b 30 in
  let w10 = rotl (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w10 +% 0x6ED9EBA1l in
  let a = rotl a 30 in
  let w11 = rotl (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w11 +% 0x6ED9EBA1l in
  let e = rotl e 30 in
  let w12 = rotl (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w12 +% 0x6ED9EBA1l in
  let d = rotl d 30 in
  let w13 = rotl (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w13 +% 0x6ED9EBA1l in
  let c = rotl c 30 in
  let w14 = rotl (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w14 +% 0x6ED9EBA1l in
  let b = rotl b 30 in
  let w15 = rotl (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w15 +% 0x6ED9EBA1l in
  let a = rotl a 30 in
  let w0 = rotl (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w0 +% 0x6ED9EBA1l in
  let e = rotl e 30 in
  let w1 = rotl (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w1 +% 0x6ED9EBA1l in
  let d = rotl d 30 in
  let w2 = rotl (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w2 +% 0x6ED9EBA1l in
  let c = rotl c 30 in
  let w3 = rotl (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w3 +% 0x6ED9EBA1l in
  let b = rotl b 30 in
  let w4 = rotl (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w4 +% 0x6ED9EBA1l in
  let a = rotl a 30 in
  let w5 = rotl (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w5 +% 0x6ED9EBA1l in
  let e = rotl e 30 in
  let w6 = rotl (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w6 +% 0x6ED9EBA1l in
  let d = rotl d 30 in
  let w7 = rotl (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w7 +% 0x6ED9EBA1l in
  let c = rotl c 30 in
  let w8 = rotl (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logor (Int32.logand b d) (Int32.logand c d))) +% e +% w8 +% 0x8F1BBCDCl in
  let b = rotl b 30 in
  let w9 = rotl (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logor (Int32.logand a c) (Int32.logand b c))) +% d +% w9 +% 0x8F1BBCDCl in
  let a = rotl a 30 in
  let w10 = rotl (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logor (Int32.logand e b) (Int32.logand a b))) +% c +% w10 +% 0x8F1BBCDCl in
  let e = rotl e 30 in
  let w11 = rotl (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logor (Int32.logand d a) (Int32.logand e a))) +% b +% w11 +% 0x8F1BBCDCl in
  let d = rotl d 30 in
  let w12 = rotl (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logor (Int32.logand c e) (Int32.logand d e))) +% a +% w12 +% 0x8F1BBCDCl in
  let c = rotl c 30 in
  let w13 = rotl (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logor (Int32.logand b d) (Int32.logand c d))) +% e +% w13 +% 0x8F1BBCDCl in
  let b = rotl b 30 in
  let w14 = rotl (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logor (Int32.logand a c) (Int32.logand b c))) +% d +% w14 +% 0x8F1BBCDCl in
  let a = rotl a 30 in
  let w15 = rotl (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logor (Int32.logand e b) (Int32.logand a b))) +% c +% w15 +% 0x8F1BBCDCl in
  let e = rotl e 30 in
  let w0 = rotl (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logor (Int32.logand d a) (Int32.logand e a))) +% b +% w0 +% 0x8F1BBCDCl in
  let d = rotl d 30 in
  let w1 = rotl (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logor (Int32.logand c e) (Int32.logand d e))) +% a +% w1 +% 0x8F1BBCDCl in
  let c = rotl c 30 in
  let w2 = rotl (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logor (Int32.logand b d) (Int32.logand c d))) +% e +% w2 +% 0x8F1BBCDCl in
  let b = rotl b 30 in
  let w3 = rotl (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logor (Int32.logand a c) (Int32.logand b c))) +% d +% w3 +% 0x8F1BBCDCl in
  let a = rotl a 30 in
  let w4 = rotl (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logor (Int32.logand e b) (Int32.logand a b))) +% c +% w4 +% 0x8F1BBCDCl in
  let e = rotl e 30 in
  let w5 = rotl (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logor (Int32.logand d a) (Int32.logand e a))) +% b +% w5 +% 0x8F1BBCDCl in
  let d = rotl d 30 in
  let w6 = rotl (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logor (Int32.logand c e) (Int32.logand d e))) +% a +% w6 +% 0x8F1BBCDCl in
  let c = rotl c 30 in
  let w7 = rotl (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1 in
  let e = rotl a 5 +% (Int32.logor (Int32.logand b c) (Int32.logor (Int32.logand b d) (Int32.logand c d))) +% e +% w7 +% 0x8F1BBCDCl in
  let b = rotl b 30 in
  let w8 = rotl (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1 in
  let d = rotl e 5 +% (Int32.logor (Int32.logand a b) (Int32.logor (Int32.logand a c) (Int32.logand b c))) +% d +% w8 +% 0x8F1BBCDCl in
  let a = rotl a 30 in
  let w9 = rotl (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1 in
  let c = rotl d 5 +% (Int32.logor (Int32.logand e a) (Int32.logor (Int32.logand e b) (Int32.logand a b))) +% c +% w9 +% 0x8F1BBCDCl in
  let e = rotl e 30 in
  let w10 = rotl (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1 in
  let b = rotl c 5 +% (Int32.logor (Int32.logand d e) (Int32.logor (Int32.logand d a) (Int32.logand e a))) +% b +% w10 +% 0x8F1BBCDCl in
  let d = rotl d 30 in
  let w11 = rotl (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1 in
  let a = rotl b 5 +% (Int32.logor (Int32.logand c d) (Int32.logor (Int32.logand c e) (Int32.logand d e))) +% a +% w11 +% 0x8F1BBCDCl in
  let c = rotl c 30 in
  let w12 = rotl (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w12 +% 0xCA62C1D6l in
  let b = rotl b 30 in
  let w13 = rotl (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w13 +% 0xCA62C1D6l in
  let a = rotl a 30 in
  let w14 = rotl (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w14 +% 0xCA62C1D6l in
  let e = rotl e 30 in
  let w15 = rotl (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w15 +% 0xCA62C1D6l in
  let d = rotl d 30 in
  let w0 = rotl (Int32.logxor (Int32.logxor w13 w8) (Int32.logxor w2 w0)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w0 +% 0xCA62C1D6l in
  let c = rotl c 30 in
  let w1 = rotl (Int32.logxor (Int32.logxor w14 w9) (Int32.logxor w3 w1)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w1 +% 0xCA62C1D6l in
  let b = rotl b 30 in
  let w2 = rotl (Int32.logxor (Int32.logxor w15 w10) (Int32.logxor w4 w2)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w2 +% 0xCA62C1D6l in
  let a = rotl a 30 in
  let w3 = rotl (Int32.logxor (Int32.logxor w0 w11) (Int32.logxor w5 w3)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w3 +% 0xCA62C1D6l in
  let e = rotl e 30 in
  let w4 = rotl (Int32.logxor (Int32.logxor w1 w12) (Int32.logxor w6 w4)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w4 +% 0xCA62C1D6l in
  let d = rotl d 30 in
  let w5 = rotl (Int32.logxor (Int32.logxor w2 w13) (Int32.logxor w7 w5)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w5 +% 0xCA62C1D6l in
  let c = rotl c 30 in
  let w6 = rotl (Int32.logxor (Int32.logxor w3 w14) (Int32.logxor w8 w6)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w6 +% 0xCA62C1D6l in
  let b = rotl b 30 in
  let w7 = rotl (Int32.logxor (Int32.logxor w4 w15) (Int32.logxor w9 w7)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w7 +% 0xCA62C1D6l in
  let a = rotl a 30 in
  let w8 = rotl (Int32.logxor (Int32.logxor w5 w0) (Int32.logxor w10 w8)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w8 +% 0xCA62C1D6l in
  let e = rotl e 30 in
  let w9 = rotl (Int32.logxor (Int32.logxor w6 w1) (Int32.logxor w11 w9)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w9 +% 0xCA62C1D6l in
  let d = rotl d 30 in
  let w10 = rotl (Int32.logxor (Int32.logxor w7 w2) (Int32.logxor w12 w10)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w10 +% 0xCA62C1D6l in
  let c = rotl c 30 in
  let w11 = rotl (Int32.logxor (Int32.logxor w8 w3) (Int32.logxor w13 w11)) 1 in
  let e = rotl a 5 +% (Int32.logxor b (Int32.logxor c d)) +% e +% w11 +% 0xCA62C1D6l in
  let b = rotl b 30 in
  let w12 = rotl (Int32.logxor (Int32.logxor w9 w4) (Int32.logxor w14 w12)) 1 in
  let d = rotl e 5 +% (Int32.logxor a (Int32.logxor b c)) +% d +% w12 +% 0xCA62C1D6l in
  let a = rotl a 30 in
  let w13 = rotl (Int32.logxor (Int32.logxor w10 w5) (Int32.logxor w15 w13)) 1 in
  let c = rotl d 5 +% (Int32.logxor e (Int32.logxor a b)) +% c +% w13 +% 0xCA62C1D6l in
  let e = rotl e 30 in
  let w14 = rotl (Int32.logxor (Int32.logxor w11 w6) (Int32.logxor w0 w14)) 1 in
  let b = rotl c 5 +% (Int32.logxor d (Int32.logxor e a)) +% b +% w14 +% 0xCA62C1D6l in
  let d = rotl d 30 in
  let w15 = rotl (Int32.logxor (Int32.logxor w12 w7) (Int32.logxor w1 w15)) 1 in
  let a = rotl b 5 +% (Int32.logxor c (Int32.logxor d e)) +% a +% w15 +% 0xCA62C1D6l in
  let c = rotl c 30 in
  st.h0 <- (st.h0 + to_u32 a) land mask32;
  st.h1 <- (st.h1 + to_u32 b) land mask32;
  st.h2 <- (st.h2 + to_u32 c) land mask32;
  st.h3 <- (st.h3 + to_u32 d) land mask32;
  st.h4 <- (st.h4 + to_u32 e) land mask32

(* Hash [len] bytes of [buf] at [off] with no staging copy beyond the
   unavoidable partial-block carry. *)
let feed_bytes (c : ctx) (buf : Bytes.t) ~(off : int) ~(len : int) : unit =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "Sha1.feed_bytes";
  c.length <- Int64.add c.length (Int64.of_int len);
  let pos = ref off in
  let stop = off + len in
  (* Fill a partial block first. *)
  if c.used > 0 then begin
    let take = min len (64 - c.used) in
    Bytes.blit buf !pos c.block c.used take;
    c.used <- c.used + take;
    pos := !pos + take;
    if c.used = 64 then begin
      compress c c.block 0;
      c.used <- 0
    end
  end;
  (* Whole blocks straight from the input. *)
  while stop - !pos >= 64 do
    compress c buf !pos;
    pos := !pos + 64
  done;
  if !pos < stop then begin
    Bytes.blit buf !pos c.block c.used (stop - !pos);
    c.used <- c.used + (stop - !pos)
  end

let update (c : ctx) (s : string) =
  (* The buffer is only read, so the unsafe view is sound. *)
  feed_bytes c (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

(* Pad, length-terminate and write the 20-byte digest at [off]. *)
let digest_into (c : ctx) (out : Bytes.t) ~(off : int) : unit =
  if off < 0 || off + 20 > Bytes.length out then invalid_arg "Sha1.digest_into";
  let bitlen = Int64.mul c.length 8L in
  (* Append 0x80, pad with zeros to 56 mod 64, append 64-bit length. *)
  Bytes.set c.block c.used '\x80';
  c.used <- c.used + 1;
  if c.used > 56 then begin
    Bytes.fill c.block c.used (64 - c.used) '\000';
    compress c c.block 0;
    c.used <- 0
  end;
  Bytes.fill c.block c.used (56 - c.used) '\000';
  Sfs_util.Bytesutil.put_be64 c.block ~off:56 bitlen;
  compress c c.block 0;
  Sfs_util.Bytesutil.put_be32 out ~off c.h0;
  Sfs_util.Bytesutil.put_be32 out ~off:(off + 4) c.h1;
  Sfs_util.Bytesutil.put_be32 out ~off:(off + 8) c.h2;
  Sfs_util.Bytesutil.put_be32 out ~off:(off + 12) c.h3;
  Sfs_util.Bytesutil.put_be32 out ~off:(off + 16) c.h4

let final (c : ctx) : string =
  let out = Bytes.create 20 in
  digest_into c out ~off:0;
  Bytes.unsafe_to_string out

let digest (s : string) : string =
  let c = init () in
  update c s;
  final c

let digest_list (parts : string list) : string =
  let c = init () in
  List.iter (update c) parts;
  final c

let digest_size = 20
let hex s = Sfs_util.Hex.encode (digest s)
