(* ARC4 stream cipher ("alleged RC4", Kaukonen-Thayer draft).

   SFS assumes ARC4 is a pseudo-random generator (paper section 3.1.3)
   and uses it with two implementation tweaks (section 3.1.3):

   - 20-byte keys, by spinning the key schedule once for each 128 bits
     (16 bytes) of key data;
   - the stream runs for the whole session, with 32 bytes pulled out per
     message to re-key the MAC (those bytes are never used to encrypt).

   The keystream after the schedule is identical to standard ARC4.

   The stream advances in blocks: each [*_into] entry point hoists the
   cursor fields into locals and runs an unsafe inner loop after a
   single bounds check, so the per-byte cost is the cipher itself, not
   bounds checks and closure calls.  [next_byte] remains the one-byte
   reference path; property tests check the block loops against it. *)

(* The permutation lives in an [int array], not [Bytes]: int-array
   loads and stores are single instructions (the value is already a
   tagged int, and immediate stores skip the write barrier), where
   byte access pays a tag fix-up on every load and store.  At 2 KB the
   state still sits comfortably in L1. *)
type t = { s : int array; mutable i : int; mutable j : int }

(* One pass of the ARC4 key schedule over the current state. *)
let schedule_pass (st : int array) (key : string) =
  let klen = String.length key in
  let j = ref 0 in
  for i = 0 to 255 do
    let si = st.(i) in
    j := (!j + si + Char.code key.[i mod klen]) land 0xff;
    st.(i) <- st.(!j);
    st.(!j) <- si
  done

let create (key : string) : t =
  if String.length key = 0 then invalid_arg "Arc4.create: empty key";
  let s = Array.init 256 (fun i -> i) in
  (* Spin the schedule once per 16-byte chunk of key material, so a
     20-byte key gets two passes.  A short key gets the single standard
     pass, keeping us interoperable with plain ARC4. *)
  let chunks = Sfs_util.Bytesutil.chunks ~size:16 key in
  List.iter (fun chunk -> schedule_pass s chunk) chunks;
  { s; i = 0; j = 0 }

(* Reference single-byte step; the block loops below inline the same
   recurrence. *)
let next_byte (t : t) : int =
  t.i <- (t.i + 1) land 0xff;
  let si = t.s.(t.i) in
  t.j <- (t.j + si) land 0xff;
  let sj = t.s.(t.j) in
  t.s.(t.i) <- sj;
  t.s.(t.j) <- si;
  t.s.((si + sj) land 0xff)

(* Advance the stream [n] bytes without producing output: the channel's
   no-encrypt mode still consumes stream positions to stay in lock-step
   with the peer, and this avoids materializing a throwaway string. *)
let skip (t : t) (n : int) : unit =
  if n < 0 then invalid_arg "Arc4.skip";
  let s = t.s in
  let i = ref t.i and j = ref t.j in
  for _ = 1 to n do
    i := (!i + 1) land 0xff;
    let si = Array.unsafe_get s !i in
    j := (!j + si) land 0xff;
    let sj = Array.unsafe_get s !j in
    Array.unsafe_set s !i sj;
    Array.unsafe_set s !j si
  done;
  t.i <- !i;
  t.j <- !j

let keystream_into (t : t) (buf : Bytes.t) ~(off : int) ~(len : int) : unit =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Arc4.keystream_into";
  let s = t.s in
  let i = ref t.i and j = ref t.j in
  for k = off to off + len - 1 do
    i := (!i + 1) land 0xff;
    let si = Array.unsafe_get s !i in
    j := (!j + si) land 0xff;
    let sj = Array.unsafe_get s !j in
    Array.unsafe_set s !i sj;
    Array.unsafe_set s !j si;
    Bytes.unsafe_set buf k (Char.unsafe_chr (Array.unsafe_get s ((si + sj) land 0xff)))
  done;
  t.i <- !i;
  t.j <- !j

(* In-place xor of [len] bytes of [buf] at [off] against the stream:
   the channel encrypts (and decrypts) whole frames in their own
   buffer with a single pass and zero copies. *)
let encrypt_into (t : t) (buf : Bytes.t) ~(off : int) ~(len : int) : unit =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Arc4.encrypt_into";
  let s = t.s in
  let i = ref t.i and j = ref t.j in
  for k = off to off + len - 1 do
    i := (!i + 1) land 0xff;
    let si = Array.unsafe_get s !i in
    j := (!j + si) land 0xff;
    let sj = Array.unsafe_get s !j in
    Array.unsafe_set s !i sj;
    Array.unsafe_set s !j si;
    let ks = Array.unsafe_get s ((si + sj) land 0xff) in
    Bytes.unsafe_set buf k
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get buf k) lxor ks))
  done;
  t.i <- !i;
  t.j <- !j

(* Xor [len] bytes of [src] at [src_off] into [dst] at [dst_off]: the
   decrypt path of the channel, reading straight from the wire string
   into the reusable frame buffer. *)
let xor_into (t : t) ~(src : string) ~(src_off : int) ~(dst : Bytes.t) ~(dst_off : int)
    ~(len : int) : unit =
  if
    src_off < 0 || dst_off < 0 || len < 0
    || src_off + len > String.length src
    || dst_off + len > Bytes.length dst
  then invalid_arg "Arc4.xor_into";
  let s = t.s in
  let i = ref t.i and j = ref t.j in
  for k = 0 to len - 1 do
    i := (!i + 1) land 0xff;
    let si = Array.unsafe_get s !i in
    j := (!j + si) land 0xff;
    let sj = Array.unsafe_get s !j in
    Array.unsafe_set s !i sj;
    Array.unsafe_set s !j si;
    let ks = Array.unsafe_get s ((si + sj) land 0xff) in
    Bytes.unsafe_set dst (dst_off + k)
      (Char.unsafe_chr (Char.code (String.unsafe_get src (src_off + k)) lxor ks))
  done;
  t.i <- !i;
  t.j <- !j

let keystream (t : t) (n : int) : string =
  if n < 0 then invalid_arg "Arc4.keystream";
  let buf = Bytes.create n in
  keystream_into t buf ~off:0 ~len:n;
  Bytes.unsafe_to_string buf

let encrypt (t : t) (plaintext : string) : string =
  let buf = Bytes.of_string plaintext in
  encrypt_into t buf ~off:0 ~len:(Bytes.length buf);
  Bytes.unsafe_to_string buf

(* Decryption is the same xor against the same stream position. *)
let decrypt = encrypt
