(** SHA-1 (FIPS 180-1), the hash SFS builds everything on: HostIDs,
    session keys, AuthIDs, the traffic MAC and the PRNG. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit

val feed_bytes : ctx -> Bytes.t -> off:int -> len:int -> unit
(** Hashes [len] bytes at [off] straight from the buffer — the
    zero-staging-copy path of the channel fast path.  The bytes are
    only read. @raise Invalid_argument when the range is out of
    bounds. *)

val copy : ctx -> ctx
(** A clone that advances independently; the basis of precomputed HMAC
    key schedules. *)

val final : ctx -> string
[@@sfs.declassify "a SHA-1 digest is one-way; SFS publishes digests of secrets (HostIDs, tags) by design"]
(** 20-byte digest. The context must not be reused after [final]. *)

val digest_into : ctx -> Bytes.t -> off:int -> unit
[@@sfs.declassify "writes only the one-way 20-byte digest into the destination buffer"]
(** Writes the 20-byte digest at [off] with no intermediate string.
    Same reuse rule as {!final}. @raise Invalid_argument when the
    range is out of bounds. *)

val digest : string -> string
[@@sfs.declassify "a SHA-1 digest is one-way; SFS publishes digests of secrets (HostIDs, tags) by design"]
val digest_list : string list -> string
[@@sfs.declassify "a SHA-1 digest is one-way; SFS publishes digests of secrets (HostIDs, tags) by design"]
(** [digest_list parts] hashes the concatenation of [parts]. *)

val digest_size : int
val hex : string -> string
[@@sfs.declassify "hex rendering of the one-way digest, for fingerprint display"]
(** [hex s] is the digest of [s] in lowercase hex. *)
