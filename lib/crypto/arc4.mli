(** ARC4 stream cipher with SFS's 20-byte-key schedule spin.

    A [t] is a running keystream: SFS keeps one per direction for the
    lifetime of a session, interleaving MAC re-keying bytes and
    encryption bytes (paper section 3.1.3). *)

type t

val create : string -> t
(** [create key] runs one key-schedule pass per 16-byte chunk of [key].
    A key of at most 16 bytes therefore behaves exactly like standard
    ARC4. @raise Invalid_argument on an empty key. *)

val next_byte : t -> int
(** Reference single-byte step; the block operations below are
    property-tested against it. *)

val skip : t -> int -> unit
(** [skip t n] advances the stream [n] bytes, producing nothing — how a
    no-encrypt channel half stays in lock-step without allocating a
    throwaway keystream. *)

val keystream : t -> int -> string
[@@sfs.secret]
(** [keystream t n] advances the stream, returning [n] bytes. *)

val keystream_into : t -> Bytes.t -> off:int -> len:int -> unit
(** Writes [len] keystream bytes into the buffer at [off].
    @raise Invalid_argument when the range is out of bounds. *)

val encrypt : t -> string -> string
[@@sfs.declassify "stream-cipher output is ciphertext; it reveals neither key nor keystream"]
(** Xors the input against the stream, advancing it. *)

val encrypt_into : t -> Bytes.t -> off:int -> len:int -> unit
[@@sfs.declassify "in-place stream-cipher pass leaves ciphertext in the buffer, not key material"]
(** Xors [len] bytes at [off] in place against the stream — the
    single-pass whole-frame encryption of the channel fast path.
    @raise Invalid_argument when the range is out of bounds. *)

val xor_into : t -> src:string -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
[@@sfs.declassify "xor against the keystream yields ciphertext or recovered plaintext, never the stream itself"]
(** Xors [len] bytes of [src] at [src_off] against the stream into
    [dst] at [dst_off]: decryption straight off the wire into a caller
    buffer. @raise Invalid_argument when either range is out of
    bounds. *)

val decrypt : t -> string -> string
[@@sfs.declassify "recovered plaintext is application data; where it is a key the consuming interface re-asserts secrecy"]
(** Identical to {!encrypt}; named for call-site clarity. *)
