(** SRP (Secure Remote Password, Wu '98; the SRP-6a refinement).

    Lets sfskey negotiate a strong session key with authserv from a weak
    password, exposing nothing useful to off-line guessing (paper
    section 2.4).  Passwords are pre-hardened with eksblowfish. *)

open Sfs_bignum

type group = { n : Nat.t; g : Nat.t }

val default_group : group
(** A 512-bit safe-prime group with generator 2, produced by this
    library (see DESIGN.md). *)

val generate_group : Prng.t -> bits:int -> group
(** Fresh safe-prime group; expensive at large sizes. *)

type verifier = { user : string; salt : string; v : Nat.t [@sfs.secret]; cost : int }
(** What the server stores.  A stolen verifier admits only an
    eksblowfish-cost-paced guessing attack, never direct login. *)

val make_verifier : ?cost:int -> group -> Prng.t -> user:string -> password:string -> verifier

val private_key : cost:int -> salt:string -> user:string -> password:string -> Nat.t
[@@sfs.secret]
(** x = H(salt ∥ eksblowfish(cost, user ∥ password)); also used to
    derive the key that encrypts a user's registered private key. *)

type client
type server
type session = { key : string [@sfs.secret]; proof : string }

val client_start : group -> Prng.t -> user:string -> password:string -> client
val client_pub : client -> Nat.t
[@@sfs.declassify "the blinded group element A = g^a is what SRP puts on the wire"]

val server_start : group -> Prng.t -> verifier -> server
val server_pub : server -> Nat.t
[@@sfs.declassify "the blinded group element B = kv + g^b is what SRP puts on the wire"]

val client_finish : client -> salt:string -> cost:int -> b_pub:Nat.t -> session option
(** [None] when the server's value is degenerate (B ≡ 0 or u = 0). *)

val server_finish : server -> a_pub:Nat.t -> session option
(** [None] when the client's value is degenerate (A ≡ 0 or u = 0). *)

val check_client_proof : session -> proof:string -> bool
(** Server verifies the client's M1; success proves password knowledge. *)

val server_proof : group -> a_pub:Nat.t -> session -> string
(** Server's counter-proof M2, proving it knew the verifier. *)

val check_server_proof : group -> a_pub:Nat.t -> session -> proof:string -> bool
