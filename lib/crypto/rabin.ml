(* Rabin-Williams public-key encryption and signatures.

   SFS uses Rabin (paper section 3.1.3) because, assuming only that
   factoring is hard, "encryption and signature verification are
   particularly fast ... because they do not require modular
   exponentiation" — both are a single modular squaring.

   Keys use the Williams congruences p ≡ 3 (mod 8), q ≡ 7 (mod 8), so
   that for any m coprime to n = pq exactly one of {m, -m, 2m, -2m} is a
   quadratic residue: the Jacobi symbol (2/n) is -1 and (-1/n) = +1 with
   -1 a non-residue mod both primes.  A signature therefore carries two
   tweak bits (e ∈ {±1}, f ∈ {1,2}) beside the root.

   Encryption applies OAEP (Bellare-Rogaway) before squaring, giving the
   plaintext-aware, chosen-ciphertext-secure scheme the paper cites;
   decryption takes all four square roots and the OAEP redundancy
   identifies the real plaintext. *)

open Sfs_bignum

type pub = { n : Nat.t; bits : int }

type priv = {
  pub : pub;
  p : Nat.t;
  q : Nat.t;
}

let modulus_bytes (pk : pub) = (pk.bits + 7) / 8

(* --- Key generation --- *)

let generate ?(bits = 1024) (rng : Prng.t) : priv =
  if bits < 128 then invalid_arg "Rabin.generate: modulus too small";
  let rand_bits b = Prng.random_nat rng ~bits:b in
  let half = bits / 2 in
  let rec go () =
    let p = Prime.generate ~congruence:(3, 8) ~rand_bits half in
    let q = Prime.generate ~congruence:(7, 8) ~rand_bits (bits - half) in
    if Nat.equal p q then go ()
    else
      let n = Nat.mul p q in
      { pub = { n; bits = Nat.num_bits n }; p; q }
  in
  go ()

(* --- Serialization (feeds HostID hashing and wire formats) --- *)

let pub_to_string (pk : pub) : string =
  let nb = Nat.to_bytes_be pk.n in
  "rabin-pk:" ^ Sfs_util.Bytesutil.be32_of_int (String.length nb) ^ nb

let pub_of_string (s : string) : pub option =
  let prefix = "rabin-pk:" in
  let plen = String.length prefix in
  if String.length s < plen + 4 || String.sub s 0 plen <> prefix then None
  else begin
    let len = Sfs_util.Bytesutil.int_of_be32 s ~off:plen in
    if String.length s <> plen + 4 + len then None
    else
      let n = Nat.of_bytes_be (String.sub s (plen + 4) len) in
      if Nat.num_bits n < 16 then None else Some { n; bits = Nat.num_bits n }
  end

let pub_equal (a : pub) (b : pub) = Nat.equal a.n b.n
let pub_fingerprint (pk : pub) = Sha1.digest (pub_to_string pk)

(* Private keys serialize for agent storage and the encrypted-key
   registration flow (sfskey deposits them with authserv, sealed under
   an eksblowfish-derived key). *)
let priv_to_string (sk : priv) : string =
  let p = Nat.to_bytes_be sk.p and q = Nat.to_bytes_be sk.q in
  "rabin-sk:"
  ^ Sfs_util.Bytesutil.be32_of_int (String.length p)
  ^ p
  ^ Sfs_util.Bytesutil.be32_of_int (String.length q)
  ^ q

let priv_of_string (s : string) : priv option =
  let prefix = "rabin-sk:" in
  let plen = String.length prefix in
  if String.length s < plen + 8 || String.sub s 0 plen <> prefix then None
  else begin
    let lp = Sfs_util.Bytesutil.int_of_be32 s ~off:plen in
    if String.length s < plen + 4 + lp + 4 then None
    else begin
      let p = Nat.of_bytes_be (String.sub s (plen + 4) lp) in
      let lq = Sfs_util.Bytesutil.int_of_be32 s ~off:(plen + 4 + lp) in
      if String.length s <> plen + 8 + lp + lq then None
      else begin
        let q = Nat.of_bytes_be (String.sub s (plen + 8 + lp) lq) in
        if Nat.is_zero p || Nat.is_zero q then None
        else
          let n = Nat.mul p q in
          Some { pub = { n; bits = Nat.num_bits n }; p; q }
      end
    end
  end

(* --- MGF1 with SHA-1, for OAEP and full-domain hashing --- *)

let mgf1 (seed : string) (len : int) : string =
  let buf = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf (Sha1.digest (seed ^ Sfs_util.Bytesutil.be32_of_int !counter));
    incr counter
  done;
  String.sub (Buffer.contents buf) 0 len

(* --- Square roots mod n via CRT --- *)

let half_exp p = Nat.shift_right (Nat.sub p Nat.one) 1 (* (p-1)/2 *)

let is_qr_mod (x : Nat.t) (p : Nat.t) : bool =
  Nat.equal (Nat.modexp ~base:x ~exp:(half_exp p) ~modulus:p) Nat.one

(* All four square roots of a residue x mod n = pq. *)
let sqrts (sk : priv) (x : Nat.t) : Nat.t list =
  match (Modarith.sqrt_3mod4 ~x:(Nat.rem x sk.p) ~p:sk.p, Modarith.sqrt_3mod4 ~x:(Nat.rem x sk.q) ~p:sk.q) with
  | Some rp, Some rq ->
      let n = sk.pub.n in
      let combine a b = Modarith.crt ~r1:a ~m1:sk.p ~r2:b ~m2:sk.q in
      let rp' = Modarith.negmod rp sk.p and rq' = Modarith.negmod rq sk.q in
      [ combine rp rq; combine rp rq'; combine rp' rq; combine rp' rq' ]
      |> List.map (fun r -> Nat.rem r n)
  | _ -> []

(* --- Signatures --- *)

type signature = { root : Nat.t; negate : bool; double : bool }

(* Full-domain hash of a message to a value below n: expand with MGF1 to
   one byte less than the modulus. *)
let fdh (pk : pub) (message : string) : Nat.t =
  let k = modulus_bytes pk in
  let m = Nat.of_bytes_be (mgf1 ("rabin-fdh:" ^ Sha1.digest message) (k - 1)) in
  (* Zero is never coprime to n; nudge (cannot occur for real SHA-1). *)
  if Nat.is_zero m then Nat.one else m

let sign (sk : priv) (message : string) : signature =
  let n = sk.pub.n in
  let m = fdh sk.pub message in
  (* Apply the {1,2} tweak to reach Jacobi symbol +1. *)
  let double = Modarith.jacobi m n <> 1 in
  let m1 =
    if double then
      match Modarith.inverse ~x:Nat.two ~modulus:n with
      | Some inv2 -> Modarith.mulmod m inv2 n
      | None -> assert false (* n is odd *)
    else m
  in
  (* Apply the {1,-1} tweak to reach an actual residue. *)
  let negate = not (is_qr_mod (Nat.rem m1 sk.p) sk.p) in
  let m2 = if negate then Modarith.negmod m1 n else m1 in
  match sqrts sk m2 with
  | root :: _ -> { root; negate; double }
  | [] ->
      (* m shares a factor with n: the signer's key is broken. *)
      failwith "Rabin.sign: message hash not invertible (degenerate key)"

let verify (pk : pub) (message : string) (s : signature) : bool =
  let n = pk.n in
  Nat.compare s.root n < 0
  &&
  let m = fdh pk message in
  let v = Modarith.mulmod s.root s.root n in
  let v = if s.negate then Modarith.negmod v n else v in
  let v = if s.double then Modarith.mulmod v Nat.two n else v in
  Nat.equal v (Nat.rem m n)

let signature_to_string (s : signature) : string =
  let r = Nat.to_bytes_be s.root in
  Printf.sprintf "rabin-sig:%c%c" (if s.negate then '1' else '0') (if s.double then '1' else '0')
  ^ Sfs_util.Bytesutil.be32_of_int (String.length r)
  ^ r

let signature_of_string (s : string) : signature option =
  let prefix_len = String.length "rabin-sig:xy" in
  if String.length s < prefix_len + 4 || not (String.starts_with ~prefix:"rabin-sig:" s) then None
  else
    let negate = s.[10] = '1' and double = s.[11] = '1' in
    let len = Sfs_util.Bytesutil.int_of_be32 s ~off:12 in
    if String.length s <> 16 + len then None
    else Some { root = Nat.of_bytes_be (String.sub s 16 len); negate; double }

(* --- Encryption (OAEP then squaring) --- *)

let hash_len = Sha1.digest_size

let max_plaintext (pk : pub) : int =
  let k = modulus_bytes pk in
  k - (2 * hash_len) - 3

(* OAEP encode into k-1 bytes (leading zero byte keeps the value < n):
     DB   = lhash ∥ 0x00.. ∥ 0x01 ∥ message
     X    = DB xor MGF1(seed)
     Y    = seed xor MGF1(X)
     EM   = 0x00 ∥ Y ∥ X *)
let lhash = Sha1.digest "rabin-oaep"

let oaep_encode (pk : pub) (rng : Prng.t) (message : string) : Nat.t =
  let k = modulus_bytes pk in
  let mlen = String.length message in
  if mlen > max_plaintext pk then invalid_arg "Rabin.encrypt: message too long";
  let db_len = k - 1 - 1 - hash_len in
  let pad = String.make (db_len - hash_len - 1 - mlen) '\000' in
  let db = lhash ^ pad ^ "\x01" ^ message in
  let seed = Prng.random_bytes rng hash_len in
  let x = Sfs_util.Bytesutil.xor db (mgf1 seed db_len) in
  let y = Sfs_util.Bytesutil.xor seed (mgf1 x hash_len) in
  Nat.of_bytes_be ("\x00" ^ y ^ x)

let oaep_decode (pk : pub) (em : Nat.t) : string option =
  let k = modulus_bytes pk in
  let db_len = k - 1 - 1 - hash_len in
  let bytes = try Nat.to_bytes_be_padded ~width:(k - 1) em with Invalid_argument _ -> "" in
  if String.length bytes <> k - 1 || bytes.[0] <> '\x00' then None
  else begin
    let y = String.sub bytes 1 hash_len in
    let x = String.sub bytes (1 + hash_len) db_len in
    let seed = Sfs_util.Bytesutil.xor y (mgf1 x hash_len) in
    let db = Sfs_util.Bytesutil.xor x (mgf1 seed db_len) in
    if not (Sfs_util.Bytesutil.ct_equal (String.sub db 0 hash_len) lhash) then None
    else begin
      (* Scan the zero padding for the 0x01 separator. *)
      let rec find i =
        if i >= String.length db then None
        else
          match db.[i] with
          | '\x00' -> find (i + 1)
          | '\x01' -> Some (String.sub db (i + 1) (String.length db - i - 1))
          | _ -> None
      in
      find hash_len
    end
  end

(* The padded value must also be a usable Rabin plaintext: coprime to n.
   With random OAEP seeds a retry is effectively never needed, but we
   loop for completeness. *)
let encrypt (pk : pub) (rng : Prng.t) (message : string) : Nat.t =
  let rec go attempts =
    if attempts > 64 then failwith "Rabin.encrypt: could not pad (degenerate key)"
    else
      let m = oaep_encode pk rng message in
      if Nat.is_zero m || not (Nat.equal (Nat.gcd m pk.n) Nat.one) then go (attempts + 1)
      else Modarith.mulmod m m pk.n
  in
  go 0

let decrypt (sk : priv) (c : Nat.t) : string option =
  let candidates = sqrts sk (Nat.rem c sk.pub.n) in
  List.fold_left
    (fun acc root -> match acc with Some _ -> acc | None -> oaep_decode sk.pub root)
    None candidates

(* --- Hybrid encryption for protocol payloads ---

   Key-negotiation messages encrypt key halves that can exceed the OAEP
   capacity; the standard construction encrypts a fresh ARC4 key and
   streams the rest. *)

let encrypt_blob (pk : pub) (rng : Prng.t) (blob : string) : string =
  let session = Prng.random_bytes rng 20 in
  let c = encrypt pk rng session in
  let cb = Nat.to_bytes_be_padded ~width:(modulus_bytes pk) c in
  let stream = Arc4.create session in
  let body = Arc4.encrypt stream blob in
  let tag = Mac.of_message ~key:session body in
  Sfs_util.Bytesutil.be32_of_int (String.length cb) ^ cb ^ tag ^ body

let decrypt_blob (sk : priv) (s : string) : string option =
  if String.length s < 4 then None
  else begin
    let clen = Sfs_util.Bytesutil.int_of_be32 s ~off:0 in
    if String.length s < 4 + clen + Mac.mac_size then None
    else begin
      let c = Nat.of_bytes_be (String.sub s 4 clen) in
      match decrypt sk c with
      | None -> None
      | Some session ->
          let tag = String.sub s (4 + clen) Mac.mac_size in
          let body = String.sub s (4 + clen + Mac.mac_size) (String.length s - 4 - clen - Mac.mac_size) in
          if not (Mac.verify ~key:session ~tag body) then None
          else Some (Arc4.decrypt (Arc4.create session) body)
    end
  end
