(** DSS-style SHA-1 pseudo-random generator (paper section 3.1.3): not
    runnable backwards if its state leaks, seeded from a 512-bit hash of
    entropy sources. *)

type t

val create : string list -> t
[@@sfs.secret]
(** [create sources] condenses the entropy [sources] into a 512-bit
    seed.  Deterministic: tests pass fixed sources. *)

val add_entropy : t -> string -> unit
(** Folds more entropy into the state (keystrokes, timers, ...). *)

val random_bytes : t -> int -> string
[@@sfs.declassify "forward-secure PRNG output doubles as public nonces; it does not reveal the seed state"]
val random_nat : t -> bits:int -> Sfs_bignum.Nat.t
[@@sfs.declassify "forward-secure PRNG output doubles as public nonces; it does not reveal the seed state"]
val random_below : t -> bound:Sfs_bignum.Nat.t -> Sfs_bignum.Nat.t
[@@sfs.declassify "forward-secure PRNG output doubles as public nonces; it does not reveal the seed state"]
val random_int : t -> int -> int
[@@sfs.declassify "forward-secure PRNG output doubles as public nonces; it does not reveal the seed state"]
(** [random_int t bound] is uniform in [0, bound). *)

val of_seed : string -> t
[@@sfs.secret]
(** [of_seed seed] is the explicit deterministic path: the same seed
    yields the same byte stream on every run.  Simulations and tests
    must use this (or {!create} with fixed sources), never {!default}. *)

val default : unit -> t
[@@sfs.secret]
(** Process-global generator seeded from ambient OS randomness and the
    process clock; for demo binaries, not for tests.  The sole waived
    wall-clock access in [lib/] (see SL003 in DESIGN.md). *)
