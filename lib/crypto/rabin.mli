(** Rabin-Williams public-key encryption and signatures (paper section
    3.1.3): security assuming only that factoring is hard, with
    encryption and signature verification costing a single modular
    squaring. *)

open Sfs_bignum

type pub = { n : Nat.t; bits : int }
type priv = { pub : pub [@sfs.public]; p : Nat.t; q : Nat.t }

val generate : ?bits:int -> Prng.t -> priv
[@@sfs.secret]
(** [generate ~bits rng] draws [p ≡ 3 (mod 8)], [q ≡ 7 (mod 8)] of
    [bits/2] bits each.  Default 1024-bit modulus; tests use smaller. *)

val modulus_bytes : pub -> int

val pub_to_string : pub -> string
(** Canonical encoding, the [PublicKey] bytes hashed into HostIDs. *)

val pub_of_string : string -> pub option
val pub_equal : pub -> pub -> bool

val pub_fingerprint : pub -> string
(** SHA-1 of the canonical encoding. *)

val priv_to_string : priv -> string
val priv_of_string : string -> priv option
[@@sfs.secret]
(** Private-key serialization, for agent storage and the encrypted-key
    deposit with authserv. *)

(** {2 Signatures} *)

type signature = { root : Nat.t; negate : bool; double : bool }
(** A modular square root plus the two Williams tweak bits. *)

val sign : priv -> string -> signature
[@@sfs.declassify "a Rabin-Williams signature is published on the wire by design; it reveals a square root, not the factors"]
val verify : pub -> string -> signature -> bool
val signature_to_string : signature -> string
val signature_of_string : string -> signature option

(** {2 Encryption} *)

val max_plaintext : pub -> int
(** OAEP capacity in bytes for direct encryption. *)

val encrypt : pub -> Prng.t -> string -> Nat.t
[@@sfs.declassify "OAEP ciphertext under the recipient's public key; safe to transmit"]
(** OAEP-pad then square. @raise Invalid_argument when the message
    exceeds {!max_plaintext}. *)

val decrypt : priv -> Nat.t -> string option
[@@sfs.declassify "recovered plaintext is the caller's message, not key material; callers re-assert secrecy where the payload is a key"]
(** Takes all four square roots; the OAEP redundancy identifies the
    plaintext. [None] on tampered or garbage ciphertext. *)

val encrypt_blob : pub -> Prng.t -> string -> string
[@@sfs.declassify "hybrid ciphertext+MAC under the recipient's public key; safe to transmit"]
(** Hybrid encryption for arbitrary-length payloads: Rabin-encrypts a
    fresh 20-byte key, ARC4-encrypts the body, MACs it. *)

val decrypt_blob : priv -> string -> string option
[@@sfs.declassify "recovered plaintext is the caller's message, not key material; callers re-assert secrecy where the payload is a key"]

(**/**)

val fdh : pub -> string -> Nat.t
val mgf1 : string -> int -> string
val sqrts : priv -> Nat.t -> Nat.t list
