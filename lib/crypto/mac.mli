(** SHA-1-based MAC over SFS traffic (HMAC-SHA-1 over length ∥ bytes). *)

val mac_size : int

type schedule
(** Precomputed per-key HMAC state (the ipad/opad blocks compressed
    once).  The channel re-keys per message, so caching the schedule
    turns two key-block compressions plus three key-sized allocations
    per MAC into two context clones. *)

val schedule : key:string -> schedule
[@@sfs.secret]

val hmac : key:string -> string -> string
[@@sfs.declassify "an HMAC tag is published alongside the message; it does not invert to the key"]
(** Plain HMAC-SHA-1, also used by SRP key confirmation. *)

val hmac_sched : schedule -> string -> string
[@@sfs.declassify "an HMAC tag is published alongside the message; it does not invert to the key"]

val of_message : key:string -> string -> string
[@@sfs.declassify "an HMAC tag is published alongside the message; it does not invert to the key"]
(** MAC over the 4-byte big-endian length followed by the message, per
    paper section 3.1.3. *)

val of_message_sched : schedule -> string -> string
[@@sfs.declassify "an HMAC tag is published alongside the message; it does not invert to the key"]

val mac_into : schedule -> Bytes.t -> off:int -> len:int -> dst:Bytes.t -> dst_off:int -> unit
[@@sfs.declassify "writes only the 20-byte public tag into the destination buffer"]
(** [mac_into s buf ~off ~len ~dst ~dst_off] MACs [len] bytes of [buf]
    at [off] and writes the 20-byte tag into [dst] at [dst_off], with no
    intermediate strings.  The length word is {e not} prepended: the
    channel passes a frame whose first bytes already are the big-endian
    length, making this equivalent to {!of_message} on the plaintext.
    @raise Invalid_argument when the tag range is out of bounds. *)

val verify : key:string -> tag:string -> string -> bool
[@@sfs.declassify "a boolean verdict from a constant-time comparison reveals no key bits"]
(** Constant-time comparison against a freshly computed tag. *)

val verify_sched : schedule -> tag:string -> string -> bool
[@@sfs.declassify "a boolean verdict from a constant-time comparison reveals no key bits"]
