(** Arbitrary-precision natural numbers.

    SFS's cryptography (Rabin-Williams, SRP) runs over naturals of up to a
    few thousand bits.  The representation is little-endian arrays of
    26-bit limbs; all operations are purely functional. *)

type t

val zero : t
val one : t
val two : t

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
(** [to_int_opt a] is [Some v] when [a] fits a native int below [2^62]. *)

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val testbit : t -> int -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument when the result would be negative. *)

val mul : t -> t -> t
(** Karatsuba above 32 limbs, schoolbook below. *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val modexp : base:t -> exp:t -> modulus:t -> t
(** Montgomery multiplication with sliding-window exponentiation
    (window 4–5 at cryptographic sizes): per-modulus precomputed
    -m⁻¹ mod R and R² replace {!modexp_reference}'s full division per
    step.  Falls back to the reference path for even moduli. *)

val modexp_reference : base:t -> exp:t -> modulus:t -> t
(** Binary exponentiation with a division per step: the slow, obviously
    correct oracle the Montgomery path is equivalence-tested against. *)

val gcd : t -> t -> t

val of_bytes_be : string -> t
(** Big-endian byte-string interpretation, as protocol fields use. *)

val to_bytes_be : t -> string
(** Minimal-length big-endian bytes; [to_bytes_be zero = ""]. *)

val to_bytes_be_padded : width:int -> t -> string
(** Left-zero-padded to exactly [width] bytes.
    @raise Invalid_argument when the value needs more than [width] bytes. *)

val of_hex : string -> t
val to_hex : t -> string
val of_string : string -> t
(** Decimal digits. @raise Invalid_argument on other characters. *)

val to_string : t -> string
(** Decimal rendering. *)

val pp : Format.formatter -> t -> unit
