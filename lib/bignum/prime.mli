(** Primality testing and prime generation.

    Randomness comes from the caller as [rand_bits : int -> Nat.t]
    (returning a uniform value of at most that many bits), keeping this
    library independent of the crypto PRNG built above it. *)

val small_primes : int list
(** All primes below 1000, used for trial division. *)

val is_probably_prime : ?rounds:int -> rand_bits:(int -> Nat.t) -> Nat.t -> bool
(** Trial division then [rounds] Miller-Rabin rounds (default 24). *)

val generate : ?congruence:int * int -> rand_bits:(int -> Nat.t) -> int -> Nat.t
[@@sfs.secret]
(** [generate ~rand_bits bits] draws a random prime of exactly [bits]
    bits.  [~congruence:(r, m)] additionally forces [p ≡ r (mod m)], as
    Rabin-Williams needs [p ≡ 3 (mod 8)] and [q ≡ 7 (mod 8)]. *)

val generate_safe : rand_bits:(int -> Nat.t) -> int -> Nat.t
(** A safe prime [p = 2q + 1] with [q] prime, as SRP groups require. *)
