(* Arbitrary-precision natural numbers.

   Representation: little-endian arrays of 26-bit limbs (base 2^26),
   normalized so the highest limb is nonzero; zero is the empty array.
   With 63-bit native ints, a limb product fits in 52 bits and a
   schoolbook accumulation of up to 2^10 products stays below 2^62,
   comfortably covering the 2048-bit operands SFS uses. *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int (v : int) : t =
  if v < 0 then invalid_arg "Nat.of_int: negative";
  let rec go v acc = if v = 0 then List.rev acc else go (v lsr limb_bits) ((v land limb_mask) :: acc) in
  Array.of_list (go v [])

let to_int_opt (a : t) : int option =
  (* Fits when below 2^62 (two full limbs plus 10 bits). *)
  let n = Array.length a in
  if n > 3 then None
  else if n = 3 && a.(2) >= 1 lsl (62 - (2 * limb_bits)) then None
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do v := (!v lsl limb_bits) lor a.(i) done;
    Some !v
  end

let one = of_int 1
let two = of_int 2

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let equal a b = compare a b = 0

let num_bits (a : t) : int =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

let testbit (a : t) (i : int) : bool =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize out

(* [sub a b] requires a >= b. *)
let sub (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Nat.sub: underflow";
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Nat.sub: underflow";
  normalize out

let mul_schoolbook (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land limb_mask;
        carry := v lsr limb_bits
      done;
      (* Propagate the final carry; it may ripple. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land limb_mask;
        carry := v lsr limb_bits;
        incr k
      done
    done;
    normalize out
  end

(* Karatsuba multiplication for large operands. *)
let karatsuba_threshold = 32

let split_at (a : t) (k : int) : t * t =
  let n = Array.length a in
  if n <= k then (a, zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (n - k)))

let shift_limbs (a : t) (k : int) : t =
  if is_zero a then zero
  else begin
    let n = Array.length a in
    let out = Array.make (n + k) 0 in
    Array.blit a 0 out k n;
    out
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left (a : t) (bits : int) : t =
  if bits < 0 then invalid_arg "Nat.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let n = Array.length a in
    let out = Array.make (n + limbs + 1) 0 in
    for i = 0 to n - 1 do
      let v = a.(i) lsl off in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) (bits : int) : t =
  if bits < 0 then invalid_arg "Nat.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let n = Array.length a in
    if limbs >= n then zero
    else begin
      let m = n - limbs in
      let out = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if i + limbs + 1 < n && off > 0 then (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask else 0 in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

(* Knuth algorithm D long division, on half-limbs packed into full limbs.
   We instead use a simpler normalized schoolbook division on 26-bit limbs:
   estimate each quotient limb from the top two dividend limbs divided by
   the top divisor limb (after normalizing so the divisor's top bit is
   set), then correct by at most two decrements. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* Single-limb divisor: simple scan. *)
    let d = b.(0) in
    let n = Array.length a in
    let q = Array.make n 0 in
    let r = ref 0 in
    for i = n - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, of_int !r)
  end
  else begin
    (* Normalize so divisor's top limb has its high bit set. *)
    let shift = limb_bits - (num_bits b - ((Array.length b - 1) * limb_bits)) in
    let u = shift_left a shift and v = shift_left b shift in
    let nv = Array.length v in
    let top = v.(nv - 1) in
    let rem = ref u in
    let nq = Array.length u - nv + 1 in
    let q = Array.make (max nq 1) 0 in
    for j = nq - 1 downto 0 do
      let r = !rem in
      let nr = Array.length r in
      (* Estimate q_j = floor(rem / (v << j*limb)) from leading limbs. *)
      let r_at i = if i >= 0 && i < nr then r.(i) else 0 in
      let hi = r_at (j + nv) and lo = r_at (j + nv - 1) in
      let qhat = ref (((hi lsl limb_bits) lor lo) / top) in
      if !qhat > limb_mask then qhat := limb_mask;
      let vj = shift_limbs v j in
      if !qhat > 0 then begin
        (* Correct an overestimate by walking the product down one
           [v << j] per decrement — O(n) per step instead of
           re-materialising the full qhat * v product each time. *)
        let prod = ref (shift_limbs (mul_schoolbook v (of_int !qhat)) j) in
        while compare !prod r > 0 do
          decr qhat;
          prod := sub !prod vj
        done;
        rem := sub r !prod
      end;
      (* After estimation the remainder may still admit one more v<<j. *)
      while compare !rem vj >= 0 do
        incr qhat;
        rem := sub !rem vj
      done;
      q.(j) <- !qhat
    done;
    (normalize q, shift_right !rem shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Right-to-left binary exponentiation with a full division per step.
   Kept as the oracle the Montgomery path is equivalence-tested against,
   and as the fallback for even moduli (where no Montgomery R⁻¹ exists). *)
let modexp_reference ~(base : t) ~(exp : t) ~(modulus : t) : t =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let result = ref one in
    let b = ref (rem base modulus) in
    let nb = num_bits exp in
    for i = 0 to nb - 1 do
      if testbit exp i then result := rem (mul !result !b) modulus;
      if i < nb - 1 then b := rem (mul !b !b) modulus
    done;
    !result
  end

(* --- Montgomery exponentiation (DESIGN.md §14) ---

   For an odd k-limb modulus m, work in the residue ring scaled by
   R = base^k: a Montgomery value ā = a·R mod m.  REDC(T) = T·R⁻¹ mod m
   costs two k-limb multiplies (which [mul] runs through Karatsuba above
   the threshold) and replaces the full division of [modexp_reference]'s
   every step.  m' = -m⁻¹ mod R comes from Hensel lifting the one-limb
   odd inverse, doubling precision each round. *)

(* Low k limbs of a (a mod base^k), normalized. *)
let trunc_limbs (a : t) (k : int) : t =
  if Array.length a <= k then a else normalize (Array.sub a 0 k)

(* Drop the low k limbs of a (a / base^k). *)
let drop_limbs (a : t) (k : int) : t =
  let n = Array.length a in
  if n <= k then zero else Array.sub a k (n - k)

type mont = {
  mg_m : t; (* the (odd) modulus, k limbs *)
  mg_k : int;
  mg_m' : t; (* -m⁻¹ mod base^k *)
  mg_r2 : t; (* base^2k mod m: the into-Montgomery-form multiplier *)
  mg_one : t; (* base^k mod m: 1 in Montgomery form *)
}

(* Hensel lifting: x ≡ m⁻¹ (mod base^j) refines to mod base^2j via
   x ← x·(2 - m·x).  Seed with the exact inverse mod base (one limb,
   Newton on native ints), then double until k limbs are valid. *)
let mont_of_modulus (m : t) : mont =
  let k = Array.length m in
  let inv0 =
    let m0 = m.(0) in
    let x = ref m0 in
    (* x ≡ m0⁻¹ mod 2^3 for odd m0; five squarings reach 2^48 > 2^26. *)
    for _ = 1 to 5 do
      x := !x * (2 - (m0 * !x)) land limb_mask
    done;
    !x land limb_mask
  in
  let x = ref (of_int inv0) in
  let j = ref 1 in
  while !j < k do
    j := min (2 * !j) k;
    let mx = trunc_limbs (mul (trunc_limbs m !j) !x) !j in
    (* 2 - m·x mod base^j: m·x ≡ 1 mod base^(j/2), so this never hits
       the degenerate 0 case unless m·x = 1 exactly (then x is done). *)
    let two_minus =
      if compare mx two <= 0 then sub two mx
      else sub (add (shift_limbs one !j) two) mx
    in
    x := trunc_limbs (mul !x two_minus) !j
  done;
  let inv = trunc_limbs !x k in
  (* m' = -m⁻¹ mod base^k *)
  let m' = if is_zero inv then zero else sub (shift_limbs one k) inv in
  let r2 = rem (shift_limbs one (2 * k)) m in
  let one_m = rem (shift_limbs one k) m in
  { mg_m = m; mg_k = k; mg_m' = m'; mg_r2 = r2; mg_one = one_m }

(* REDC: T < m·base^k  ↦  T·base^-k mod m. *)
let mont_redc (g : mont) (t : t) : t =
  let u = trunc_limbs (mul (trunc_limbs t g.mg_k) g.mg_m') g.mg_k in
  let s = drop_limbs (add t (mul u g.mg_m)) g.mg_k in
  if compare s g.mg_m >= 0 then sub s g.mg_m else s

let mont_mul (g : mont) (a : t) (b : t) : t = mont_redc g (mul a b)

(* Sliding-window width by exponent size: 4 covers SRP's 512-bit group,
   5 the 1024-bit-plus Rabin keys; tiny exponents stay binary. *)
let window_bits (nb : int) : int =
  if nb <= 24 then 1 else if nb <= 96 then 3 else if nb <= 768 then 4 else 5

let modexp ~(base : t) ~(exp : t) ~(modulus : t) : t =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else if not (testbit modulus 0) then
    (* Even modulus: no R⁻¹ exists; take the reference path. *)
    modexp_reference ~base ~exp ~modulus
  else if is_zero exp then one
  else begin
    let g = mont_of_modulus modulus in
    let w = window_bits (num_bits exp) in
    let bm = mont_redc g (mul (rem base modulus) g.mg_r2) in
    (* Odd powers bm^1, bm^3, ... bm^(2^w - 1), in Montgomery form. *)
    let odd = Array.make (1 lsl (w - 1)) bm in
    if w > 1 then begin
      let b2 = mont_mul g bm bm in
      for i = 1 to Array.length odd - 1 do
        odd.(i) <- mont_mul g odd.(i - 1) b2
      done
    end;
    let result = ref g.mg_one in
    let i = ref (num_bits exp - 1) in
    while !i >= 0 do
      if not (testbit exp !i) then begin
        result := mont_mul g !result !result;
        decr i
      end
      else begin
        (* Longest window ending in a set bit, at most w bits. *)
        let l = max 0 (!i - w + 1) in
        let l = ref l in
        while not (testbit exp !l) do incr l done;
        let width = !i - !l + 1 in
        let v = ref 0 in
        for b = !i downto !l do
          v := (!v lsl 1) lor (if testbit exp b then 1 else 0)
        done;
        for _ = 1 to width do
          result := mont_mul g !result !result
        done;
        result := mont_mul g !result odd.(!v lsr 1);
        i := !l - 1
      end
    done;
    mont_redc g !result
  end

let rec gcd (a : t) (b : t) : t = if is_zero b then a else gcd b (rem a b)

let of_bytes_be (s : string) : t =
  let n = String.length s in
  let nbits = 8 * n in
  let limbs = (nbits + limb_bits - 1) / limb_bits in
  let out = Array.make (max limbs 1) 0 in
  let bitpos = ref 0 in
  for i = n - 1 downto 0 do
    let byte = Char.code s.[i] in
    let limb = !bitpos / limb_bits and off = !bitpos mod limb_bits in
    out.(limb) <- out.(limb) lor ((byte lsl off) land limb_mask);
    if off > limb_bits - 8 && limb + 1 < Array.length out then
      out.(limb + 1) <- out.(limb + 1) lor (byte lsr (limb_bits - off));
    bitpos := !bitpos + 8
  done;
  normalize out

let to_bytes_be (a : t) : string =
  let nbytes = (num_bits a + 7) / 8 in
  if nbytes = 0 then ""
  else begin
    let out = Bytes.make nbytes '\000' in
    for byte = 0 to nbytes - 1 do
      let bitpos = 8 * byte in
      let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
      let v = a.(limb) lsr off in
      let v =
        if off > limb_bits - 8 && limb + 1 < Array.length a then
          v lor (a.(limb + 1) lsl (limb_bits - off))
        else v
      in
      Bytes.set out (nbytes - 1 - byte) (Char.chr (v land 0xff))
    done;
    Bytes.unsafe_to_string out
  end

(* Fixed-width big-endian encoding, for protocol messages. *)
let to_bytes_be_padded ~(width : int) (a : t) : string =
  let s = to_bytes_be a in
  let n = String.length s in
  if n > width then invalid_arg "Nat.to_bytes_be_padded: too large";
  String.make (width - n) '\000' ^ s

let of_hex (h : string) : t = of_bytes_be (Sfs_util.Hex.decode (if String.length h mod 2 = 1 then "0" ^ h else h))
let to_hex (a : t) : string =
  if is_zero a then "0"
  else
    let h = Sfs_util.Hex.encode (to_bytes_be a) in
    if h.[0] = '0' then String.sub h 1 (String.length h - 1) else h

let pp ppf a = Fmt.string ppf (to_hex a)

(* Decimal conversion, for human-facing output and tests. *)
let to_string (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let ten9 = of_int 1_000_000_000 in
    let rec go a digits =
      if is_zero a then digits
      else
        let q, r = divmod a ten9 in
        let r = match to_int_opt r with Some v -> v | None -> assert false in
        go q (r :: digits)
    in
    (match go a [] with
    | [] -> assert false
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest);
    Buffer.contents buf
  end

let of_string (s : string) : t =
  if s = "" then invalid_arg "Nat.of_string";
  let acc = ref zero in
  let ten = of_int 10 in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_string: bad digit")
    s;
  !acc
