(** Sun RPC (RFC 1831) message framing: the call/reply envelope with
    AUTH_NONE / AUTH_UNIX credentials and the TCP record-marking
    standard, enough to carry the NFS 3 and SFS programs faithfully
    (paper section 3.2). *)

val rpc_version : int

type auth_flavor =
  | Auth_none
  | Auth_unix of { stamp : int; machine : string; uid : int; gid : int; gids : int list }

type call = {
  xid : int;
  prog : int;
  vers : int;
  proc : int;
  trace : int;  (** causal-trace context (simulation annex); 0 = none *)
  span : int;
  cred : auth_flavor;
  args : string;  (** pre-marshaled procedure arguments *)
}

type reject_reason = Rpc_mismatch of int * int | Auth_error of int

type reply_body =
  | Success of string  (** marshaled results *)
  | Prog_unavail
  | Prog_mismatch of int * int
  | Proc_unavail
  | Garbage_args
  | System_err
  | Rejected of reject_reason

type reply = { reply_xid : int; body : reply_body }

type msg = Call of call | Reply of reply

val enc_auth : Xdr.enc -> auth_flavor -> unit
val dec_auth : Xdr.dec -> auth_flavor

val enc_msg : Xdr.enc -> msg -> unit
val dec_msg : Xdr.dec -> msg

val msg_to_string : ?enc:Xdr.enc -> msg -> string
(** [?enc] reuses the given encoder (it is reset first) instead of
    allocating one per call. *)

val msg_of_string : string -> (msg, string) result
(** Total: malformed envelopes yield [Error], never an exception. *)

(** {2 TCP record marking} *)

val add_record : Buffer.t -> string -> unit
(** Appends one record with its fragment header. *)

val record_to_string : string -> string

type reader
(** Incremental record reassembly for the stream transports. *)

val make_reader : unit -> reader
val reader_feed : reader -> string -> unit
val reader_next : reader -> string option
