(* Sun RPC (RFC 1831) message framing.

   All SFS programs talk Sun RPC (paper section 3.2).  We implement the
   call/reply envelope with AUTH_NONE / AUTH_UNIX credentials and the
   TCP record-marking standard (fragment headers with a last-fragment
   bit), enough to carry the NFS 3 and SFS programs faithfully. *)

let rpc_version = 2

type auth_flavor = Auth_none | Auth_unix of { stamp : int; machine : string; uid : int; gid : int; gids : int list }

type call = {
  xid : int;
  prog : int;
  vers : int;
  proc : int;
  trace : int; (* causal-trace context (simulation annex); 0 = none *)
  span : int;
  cred : auth_flavor;
  args : string; (* pre-marshaled procedure arguments *)
}

type reject_reason =
  | Rpc_mismatch of int * int
  | Auth_error of int

type reply_body =
  | Success of string (* marshaled results *)
  | Prog_unavail
  | Prog_mismatch of int * int
  | Proc_unavail
  | Garbage_args
  | System_err
  | Rejected of reject_reason

type reply = { reply_xid : int; body : reply_body }

type msg = Call of call | Reply of reply

(* --- Auth flavors --- *)

let enc_auth (e : Xdr.enc) (a : auth_flavor) : unit =
  match a with
  | Auth_none ->
      Xdr.enc_uint32 e 0;
      Xdr.enc_opaque e ""
  | Auth_unix { stamp; machine; uid; gid; gids } ->
      Xdr.enc_uint32 e 1;
      let body =
        Xdr.encode
          (fun e () ->
            Xdr.enc_uint32 e stamp;
            Xdr.enc_string e machine;
            Xdr.enc_uint32 e uid;
            Xdr.enc_uint32 e gid;
            Xdr.enc_array e Xdr.enc_uint32 gids)
          ()
      in
      Xdr.enc_opaque e body

let dec_auth (d : Xdr.dec) : auth_flavor =
  let flavor = Xdr.dec_uint32 d in
  let body = Xdr.dec_opaque d ~max:400 in
  match flavor with
  | 0 -> Auth_none
  | 1 -> (
      match
        Xdr.run body (fun d ->
            let stamp = Xdr.dec_uint32 d in
            let machine = Xdr.dec_string d ~max:255 in
            let uid = Xdr.dec_uint32 d in
            let gid = Xdr.dec_uint32 d in
            let gids = Xdr.dec_array d ~max:16 Xdr.dec_uint32 in
            Auth_unix { stamp; machine; uid; gid; gids })
      with
      | Ok a -> a
      | Result.Error msg -> Xdr.error "bad AUTH_UNIX body: %s" msg)
  | f -> Xdr.error "unsupported auth flavor %d" f

(* --- Messages --- *)

let enc_msg (e : Xdr.enc) (m : msg) : unit =
  match m with
  | Call c ->
      Xdr.enc_uint32 e c.xid;
      Xdr.enc_uint32 e 0 (* CALL *);
      Xdr.enc_uint32 e rpc_version;
      Xdr.enc_uint32 e c.prog;
      Xdr.enc_uint32 e c.vers;
      Xdr.enc_uint32 e c.proc;
      (* Trace-context annex (DESIGN.md §13) — a simulation-only
         departure from RFC 1831, mirroring Sfsrw.Fs_call.  Zero when
         tracing is off; retransmissions reuse the marshaled bytes, so
         duplicate-request caching is unaffected. *)
      Xdr.enc_uint32 e c.trace;
      Xdr.enc_uint32 e c.span;
      enc_auth e c.cred;
      enc_auth e Auth_none (* verifier *);
      Xdr.enc_raw e c.args
  | Reply r -> (
      Xdr.enc_uint32 e r.reply_xid;
      Xdr.enc_uint32 e 1 (* REPLY *);
      match r.body with
      | Rejected reason -> (
          Xdr.enc_uint32 e 1 (* MSG_DENIED *);
          match reason with
          | Rpc_mismatch (lo, hi) ->
              Xdr.enc_uint32 e 0;
              Xdr.enc_uint32 e lo;
              Xdr.enc_uint32 e hi
          | Auth_error stat ->
              Xdr.enc_uint32 e 1;
              Xdr.enc_uint32 e stat)
      | accepted -> (
          Xdr.enc_uint32 e 0 (* MSG_ACCEPTED *);
          enc_auth e Auth_none (* verifier *);
          match accepted with
          | Success results ->
              Xdr.enc_uint32 e 0;
              Xdr.enc_raw e results
          | Prog_unavail -> Xdr.enc_uint32 e 1
          | Prog_mismatch (lo, hi) ->
              Xdr.enc_uint32 e 2;
              Xdr.enc_uint32 e lo;
              Xdr.enc_uint32 e hi
          | Proc_unavail -> Xdr.enc_uint32 e 3
          | Garbage_args -> Xdr.enc_uint32 e 4
          | System_err -> Xdr.enc_uint32 e 5
          | Rejected _ -> assert false))

let dec_msg (d : Xdr.dec) : msg =
  let xid = Xdr.dec_uint32 d in
  match Xdr.dec_uint32 d with
  | 0 ->
      let rpcvers = Xdr.dec_uint32 d in
      if rpcvers <> rpc_version then Xdr.error "rpc version %d" rpcvers;
      let prog = Xdr.dec_uint32 d in
      let vers = Xdr.dec_uint32 d in
      let proc = Xdr.dec_uint32 d in
      let trace = Xdr.dec_uint32 d in
      let span = Xdr.dec_uint32 d in
      let cred = dec_auth d in
      let _verf = dec_auth d in
      let args = Xdr.dec_rest d in
      Call { xid; prog; vers; proc; trace; span; cred; args }
  | 1 -> (
      match Xdr.dec_uint32 d with
      | 0 -> (
          let _verf = dec_auth d in
          match Xdr.dec_uint32 d with
          | 0 ->
              let results = Xdr.dec_rest d in
              Reply { reply_xid = xid; body = Success results }
          | 1 -> Reply { reply_xid = xid; body = Prog_unavail }
          | 2 ->
              let lo = Xdr.dec_uint32 d in
              let hi = Xdr.dec_uint32 d in
              Reply { reply_xid = xid; body = Prog_mismatch (lo, hi) }
          | 3 -> Reply { reply_xid = xid; body = Proc_unavail }
          | 4 -> Reply { reply_xid = xid; body = Garbage_args }
          | 5 -> Reply { reply_xid = xid; body = System_err }
          | s -> Xdr.error "bad accept_stat %d" s)
      | 1 -> (
          match Xdr.dec_uint32 d with
          | 0 ->
              let lo = Xdr.dec_uint32 d in
              let hi = Xdr.dec_uint32 d in
              Reply { reply_xid = xid; body = Rejected (Rpc_mismatch (lo, hi)) }
          | 1 -> Reply { reply_xid = xid; body = Rejected (Auth_error (Xdr.dec_uint32 d)) }
          | s -> Xdr.error "bad reject_stat %d" s)
      | s -> Xdr.error "bad reply_stat %d" s)
  | dir -> Xdr.error "bad msg direction %d" dir

(* [?enc] lets a connection reuse one encoder across calls (reset +
   encode); the default allocates as before. *)
let msg_to_string ?enc (m : msg) : string =
  match enc with
  | None -> Xdr.encode enc_msg m
  | Some e ->
      Xdr.reset e;
      enc_msg e m;
      Xdr.to_string e

let msg_of_string (s : string) : (msg, string) result =
  Xdr.run s (fun d ->
      let m = dec_msg d in
      m)

(* --- TCP record marking --- *)

(* Fragment header: high bit = last fragment, low 31 bits = length. *)
let add_record (buf : Buffer.t) (record : string) : unit =
  let n = String.length record in
  if n > 0x7FFFFFFF then invalid_arg "Sunrpc.add_record: too large";
  Buffer.add_string buf (Sfs_util.Bytesutil.be32_of_int (n lor 0x80000000));
  Buffer.add_string buf record

let record_to_string (record : string) : string =
  let n = String.length record in
  if n > 0x7FFFFFFF then invalid_arg "Sunrpc.record_to_string: too large";
  let b = Bytes.create (n + 4) in
  Sfs_util.Bytesutil.put_be32 b ~off:0 (n lor 0x80000000);
  Bytes.blit_string record 0 b 4 n;
  Bytes.unsafe_to_string b

(* Incremental record reassembly, for the stream transports. *)
type reader = { mutable pending : string; mutable records : string list }

let make_reader () : reader = { pending = ""; records = [] }

let reader_feed (r : reader) (bytes : string) : unit =
  r.pending <- r.pending ^ bytes;
  let progress = ref true in
  while !progress do
    progress := false;
    let n = String.length r.pending in
    if n >= 4 then begin
      let hdr = Sfs_util.Bytesutil.int_of_be32 r.pending ~off:0 in
      let last = hdr land 0x80000000 <> 0 in
      let len = hdr land 0x7FFFFFFF in
      if n >= 4 + len then begin
        (* Multi-fragment records concatenate; we treat each complete
           fragment chain as one record (single-fragment in practice). *)
        if not last then Xdr.error "fragmented records unsupported";
        r.records <- String.sub r.pending 4 len :: r.records;
        r.pending <- String.sub r.pending (4 + len) (n - 4 - len);
        progress := true
      end
    end
  done

let reader_next (r : reader) : string option =
  match List.rev r.records with
  | [] -> None
  | first :: rest ->
      r.records <- List.rev rest;
      Some first
