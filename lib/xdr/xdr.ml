(* XDR — External Data Representation (RFC 1832 subset).

   All SFS programs communicate with Sun RPC, and "any data that SFS
   hashes, signs, or public-key encrypts is defined as an XDR data
   structure; SFS computes the hash or public key function on the raw,
   marshaled bytes" (paper section 3.2).  This module provides the
   marshaling primitives; protocol modules compose them. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- Encoding ---

   The encoder is a growable byte buffer written in place: integers go
   straight in big-endian via Bytesutil.put_*, opaques are blitted and
   their XDR padding zero-filled, with no intermediate 4-byte strings
   or pad allocations.  [reset] lets RPC layers keep one encoder per
   connection instead of allocating one per call. *)

type enc = { mutable buf : Bytes.t; mutable len : int }

let make_enc () : enc = { buf = Bytes.create 256; len = 0 }

let reset (e : enc) : unit = e.len <- 0

let to_string (e : enc) : string = Bytes.sub_string e.buf 0 e.len

(* Room for [n] more bytes, growing geometrically.  Bytes.create leaves
   contents uninitialized; writers below fill every byte they claim. *)
let reserve (e : enc) (n : int) : int =
  let need = e.len + n in
  if need > Bytes.length e.buf then begin
    let cap = ref (Bytes.length e.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let buf = Bytes.create !cap in
    Bytes.blit e.buf 0 buf 0 e.len;
    e.buf <- buf
  end;
  let off = e.len in
  e.len <- need;
  off

let pad4 (n : int) : int = (4 - (n land 3)) land 3

(* Appends pre-marshaled bytes verbatim (nested structures, RPC args). *)
let enc_raw (e : enc) (s : string) : unit =
  let off = reserve e (String.length s) in
  Bytes.blit_string s 0 e.buf off (String.length s)

let enc_uint32 (e : enc) (v : int) : unit =
  if v < 0 || v > 0xFFFFFFFF then error "enc_uint32: out of range: %d" v;
  let off = reserve e 4 in
  Sfs_util.Bytesutil.put_be32 e.buf ~off v

let enc_int32 (e : enc) (v : int) : unit =
  if v < -0x80000000 || v > 0x7FFFFFFF then error "enc_int32: out of range: %d" v;
  let off = reserve e 4 in
  Sfs_util.Bytesutil.put_be32 e.buf ~off (v land 0xFFFFFFFF)

let enc_uint64 (e : enc) (v : int64) : unit =
  let off = reserve e 8 in
  Sfs_util.Bytesutil.put_be64 e.buf ~off v

let enc_bool (e : enc) (b : bool) : unit = enc_uint32 e (if b then 1 else 0)

(* Blit the opaque bytes and zero their padding in one reservation. *)
let enc_padded (e : enc) (s : string) : unit =
  let n = String.length s in
  let pad = pad4 n in
  let off = reserve e (n + pad) in
  Bytes.blit_string s 0 e.buf off n;
  Bytes.fill e.buf (off + n) pad '\000'

let enc_fixed_opaque (e : enc) ~(size : int) (s : string) : unit =
  if String.length s <> size then error "enc_fixed_opaque: expected %d bytes, got %d" size (String.length s);
  enc_padded e s

let enc_opaque (e : enc) (s : string) : unit =
  enc_uint32 e (String.length s);
  enc_padded e s

let enc_string = enc_opaque

let enc_option (e : enc) (f : enc -> 'a -> unit) (v : 'a option) : unit =
  match v with
  | None -> enc_bool e false
  | Some x ->
      enc_bool e true;
      f e x

let enc_array (e : enc) (f : enc -> 'a -> unit) (l : 'a list) : unit =
  enc_uint32 e (List.length l);
  List.iter (f e) l

(* --- Decoding ---

   [stop] bounds the decoder to a window of [data]: the zero-copy read
   path decodes nested structures (an Fs_reply's results field, a READ
   reply's payload) in place, as views into the one decrypted frame,
   instead of copying each layer out with String.sub first. *)

type dec = { data : string; mutable pos : int; stop : int }

let make_dec (data : string) : dec = { data; pos = 0; stop = String.length data }

(* A decoder over a window of [data] — decoding a nested structure in
   place, without carving it out first. *)
let make_dec_sub (data : string) ~(off : int) ~(len : int) : dec =
  if off < 0 || len < 0 || off + len > String.length data then
    error "make_dec_sub: window [%d,%d) outside %d bytes" off (off + len) (String.length data);
  { data; pos = off; stop = off + len }

let remaining (d : dec) : int = d.stop - d.pos

let need (d : dec) (n : int) : unit =
  if remaining d < n then error "decode: truncated (need %d, have %d)" n (remaining d)

let dec_uint32 (d : dec) : int =
  need d 4;
  let v = Sfs_util.Bytesutil.int_of_be32 d.data ~off:d.pos in
  d.pos <- d.pos + 4;
  v

let dec_int32 (d : dec) : int =
  let v = dec_uint32 d in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let dec_uint64 (d : dec) : int64 =
  need d 8;
  let v = Sfs_util.Bytesutil.int64_of_be64 d.data ~off:d.pos in
  d.pos <- d.pos + 8;
  v

let dec_bool (d : dec) : bool =
  match dec_uint32 d with
  | 0 -> false
  | 1 -> true
  | v -> error "dec_bool: bad value %d" v

let dec_fixed_opaque (d : dec) ~(size : int) : string =
  need d (size + pad4 size);
  let s = String.sub d.data d.pos size in
  d.pos <- d.pos + size + pad4 size;
  s

let dec_opaque ?(max = 0x100000) (d : dec) : string =
  let n = dec_uint32 d in
  if n > max then error "dec_opaque: length %d exceeds bound %d" n max;
  dec_fixed_opaque d ~size:n

(* Zero-copy opaque: a view of the payload in place of a copy. *)
let dec_opaque_slice ?(max = 0x100000) (d : dec) : Sfs_util.Slice.t =
  let n = dec_uint32 d in
  if n > max then error "dec_opaque_slice: length %d exceeds bound %d" n max;
  need d (n + pad4 n);
  let s = Sfs_util.Slice.make d.data ~off:d.pos ~len:n in
  d.pos <- d.pos + n + pad4 n;
  s

let dec_string = dec_opaque

let dec_option (d : dec) (f : dec -> 'a) : 'a option =
  if dec_bool d then Some (f d) else None

let dec_array ?(max = 0x10000) (d : dec) (f : dec -> 'a) : 'a list =
  let n = dec_uint32 d in
  if n > max then error "dec_array: length %d exceeds bound %d" n max;
  List.init n (fun _ -> f d)

(* Consume all remaining bytes verbatim (trailing RPC args/results). *)
let dec_rest (d : dec) : string =
  let s = String.sub d.data d.pos (remaining d) in
  d.pos <- d.stop;
  s

let dec_done (d : dec) : unit =
  if remaining d <> 0 then error "decode: %d trailing bytes" (remaining d)

(* Run a decoder over a complete message. *)
let run (data : string) (f : dec -> 'a) : ('a, string) result =
  let d = make_dec data in
  match f d with
  | v ->
      if remaining d = 0 then Ok v
      else Result.Error (Printf.sprintf "decode: %d trailing bytes" (remaining d))
  | exception Error msg -> Result.Error msg

(* Same, over a view — the message never gets carved out of its frame. *)
let run_slice (s : Sfs_util.Slice.t) (f : dec -> 'a) : ('a, string) result =
  match make_dec_sub (Sfs_util.Slice.base s) ~off:(Sfs_util.Slice.offset s) ~len:(Sfs_util.Slice.length s) with
  | d -> (
      match f d with
      | v ->
          if remaining d = 0 then Ok v
          else Result.Error (Printf.sprintf "decode: %d trailing bytes" (remaining d))
      | exception Error msg -> Result.Error msg)
  | exception Error msg -> Result.Error msg

(* Serialize with an encoder function. *)
let encode (f : enc -> 'a -> unit) (v : 'a) : string =
  let e = make_enc () in
  f e v;
  to_string e
