(** XDR marshaling (RFC 1832 subset).  Every SFS protocol message —
    including everything hashed, signed or encrypted — is XDR-encoded
    first (paper section 3.2). *)

exception Error of string

val error : ('a, unit, string, 'b) format4 -> 'a
(** [error fmt ...] raises {!Error} with a formatted message. *)

(** {2 Encoding} *)

type enc

val make_enc : unit -> enc
val to_string : enc -> string

val reset : enc -> unit
(** Empties the encoder, keeping its buffer — one encoder can serve a
    whole connection without per-call allocation. *)

val enc_raw : enc -> string -> unit
(** Appends pre-marshaled bytes verbatim. *)

val enc_uint32 : enc -> int -> unit
val enc_int32 : enc -> int -> unit
val enc_uint64 : enc -> int64 -> unit
val enc_bool : enc -> bool -> unit

val enc_fixed_opaque : enc -> size:int -> string -> unit
(** Fixed-width opaque data, zero-padded to 4 bytes. *)

val enc_opaque : enc -> string -> unit
(** Length-prefixed opaque data. *)

val enc_string : enc -> string -> unit
val enc_option : enc -> (enc -> 'a -> unit) -> 'a option -> unit
val enc_array : enc -> (enc -> 'a -> unit) -> 'a list -> unit

val encode : (enc -> 'a -> unit) -> 'a -> string
(** One-shot serialization. *)

(** {2 Decoding}

    Decoders raise {!Error} on malformed input; {!run} catches it. *)

type dec

val make_dec : string -> dec

val make_dec_sub : string -> off:int -> len:int -> dec
(** A decoder bounded to a window of the input: nested structures
    decode in place instead of being copied out first (the zero-copy
    read path). @raise Error when the window exceeds the input. *)

val remaining : dec -> int

val dec_uint32 : dec -> int
val dec_int32 : dec -> int
val dec_uint64 : dec -> int64
val dec_bool : dec -> bool
val dec_fixed_opaque : dec -> size:int -> string

val dec_opaque : ?max:int -> dec -> string
(** Bounded (default 1 MiB): attacker-supplied lengths cannot force
    large allocations. *)

val dec_opaque_slice : ?max:int -> dec -> Sfs_util.Slice.t
(** Like {!dec_opaque}, but returns a view of the payload in place —
    no copy; the slice retains the whole input string. *)

val dec_string : ?max:int -> dec -> string
val dec_option : dec -> (dec -> 'a) -> 'a option
val dec_array : ?max:int -> dec -> (dec -> 'a) -> 'a list

val dec_rest : dec -> string
(** Consumes all remaining bytes verbatim. *)

val dec_done : dec -> unit
(** @raise Error when input remains. *)

val run : string -> (dec -> 'a) -> ('a, string) result
(** Complete-message decode: trailing bytes are an error. *)

val run_slice : Sfs_util.Slice.t -> (dec -> 'a) -> ('a, string) result
(** {!run} over a view: the message decodes inside its backing frame. *)
