(* Critical-path aggregation: fold the per-exchange [Obs.cp_sample]s of
   a registry into a per-op-type report — sample count, per-segment
   totals, and wall-time quantiles from a mergeable sketch.  Everything
   is deterministic: ops sort by name, segments keep first-appearance
   order, and quantiles come from the fixed-bucket sketch. *)

type op_agg = {
  oa_op : string;
  oa_count : int;
  oa_wall_us : float; (* total wall time across samples *)
  oa_segments : (string * float) list; (* totals, first-appearance order *)
  oa_sketch : Sketch.t; (* of per-sample wall us, rounded *)
}

let round_us (v : float) : int = int_of_float (Float.round v)

let per_op (r : Obs.registry) : op_agg list =
  let tbl : (string, op_agg ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Obs.cp_sample) ->
      let a =
        match Hashtbl.find_opt tbl s.Obs.cp_op with
        | Some a -> a
        | None ->
            let a =
              ref
                {
                  oa_op = s.Obs.cp_op;
                  oa_count = 0;
                  oa_wall_us = 0.0;
                  oa_segments = [];
                  oa_sketch = Sketch.create ();
                }
            in
            Hashtbl.replace tbl s.Obs.cp_op a;
            order := s.Obs.cp_op :: !order;
            a
      in
      let segments =
        List.fold_left
          (fun acc (k, v) ->
            let rec bump = function
              | [] -> [ (k, v) ]
              | (k', v') :: rest when String.equal k' k -> (k', v' +. v) :: rest
              | kv :: rest -> kv :: bump rest
            in
            bump acc)
          !a.oa_segments s.Obs.cp_segments
      in
      Sketch.observe !a.oa_sketch (round_us s.Obs.cp_wall_us);
      a :=
        {
          !a with
          oa_count = !a.oa_count + 1;
          oa_wall_us = !a.oa_wall_us +. s.Obs.cp_wall_us;
          oa_segments = segments;
        })
    (Obs.cp_samples r);
  List.sort
    (fun a b -> compare a.oa_op b.oa_op)
    (List.rev_map (fun op -> !(Hashtbl.find tbl op)) !order)

let us (v : float) : string = Printf.sprintf "%.3f" v

let json_of_op (a : op_agg) : string =
  let segs = List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (Obs.json_escape k) (us v)) a.oa_segments in
  Printf.sprintf
    "\"%s\":{\"count\":%d,\"wall_us\":%s,\"p50_us\":%d,\"p95_us\":%d,\"p99_us\":%d,\"segments\":{%s}}"
    (Obs.json_escape a.oa_op) a.oa_count (us a.oa_wall_us)
    (Sketch.quantile a.oa_sketch 0.50)
    (Sketch.quantile a.oa_sketch 0.95)
    (Sketch.quantile a.oa_sketch 0.99)
    (String.concat "," segs)

(* Per-figure report: one entry per registry label that has samples.
   Returns [None] when no registry sampled anything (figures whose
   stacks never take an instrumented RPC path). *)
let critical_path_json (regs : (string * Obs.registry) list) : string option =
  let entries =
    List.filter_map
      (fun (label, r) ->
        match per_op r with
        | [] -> None
        | ops ->
            Some
              (Printf.sprintf "\"%s\":{%s}" (Obs.json_escape label)
                 (String.concat "," (List.map json_of_op ops))))
      regs
  in
  match entries with
  | [] -> None
  | _ -> Some (Printf.sprintf "{%s}" (String.concat "," entries))
