(** Deterministic observability: spans, counters and histograms.

    A {!registry} is an explicit value created by whoever builds a
    stack (see [Sfs_workload.Stacks.make]) and threaded down through
    constructors — there is no global registry.  All timestamps come
    from the [now_us] closure supplied at creation (in practice the
    simulated clock), never the wall clock, so two identical runs
    export byte-identical traces.

    Instrumentation entry points ({!add}, {!observe}, {!span}) take a
    [registry option]: passing [None] makes them no-ops, so
    uninstrumented stacks pay only an option test. *)

type histogram

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_depth : int;  (** nesting depth at the time the span opened *)
  sp_args : (string * string) list;
}

type registry

val create : ?max_spans:int -> now_us:(unit -> float) -> unit -> registry
(** [create ~now_us ()] makes an empty registry.  At most [max_spans]
    spans are retained (default 200_000); further completions bump the
    [obs.spans_dropped] counter instead of allocating. *)

val now_us : registry -> float

val add : registry option -> string -> int -> unit
[@@sfs.sink "obs"]
(** [add r name n] bumps counter [name] by [n]. *)

val incr : registry option -> string -> unit
[@@sfs.sink "obs"]
val counter : registry -> string -> int

val observe : registry option -> string -> int -> unit
[@@sfs.sink "obs"]
(** [observe r name v] records integer observation [v] (microseconds or
    bytes, rounded by the caller) into histogram [name].  Buckets are
    power-of-two sized: bucket index = bit count of [v]. *)

val span : ?args:(string * string) list -> registry option -> cat:string -> string -> (unit -> 'a) -> 'a
[@@sfs.sink "obs"]
(** [span r ~cat name f] runs [f], recording a span on completion —
    whether [f] returns or raises. *)

val spans : registry -> span list
(** Completed spans in completion order. *)

val dropped_spans : registry -> int

type histo_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : (int * int) list;  (** (bucket index, count), sparse, ascending *)
}

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_histograms : (string * histo_snapshot) list;  (** sorted by name *)
  snap_spans : span list;  (** completion order *)
}

val snapshot : registry -> snapshot
val snap_counter : snapshot -> string -> int

val histo_of_observations : int list -> histo_snapshot
(** Pure constructor for property tests. *)

val histo_merge : histo_snapshot -> histo_snapshot -> histo_snapshot
(** Pointwise sum of counts, sums and buckets; associative and
    commutative because everything is an integer. *)

val chrome_trace : (string * registry) list -> string
(** Chrome [trace_event] JSON (Perfetto / chrome://tracing loadable).
    Each [(label, registry)] pair becomes one process, named [label]. *)

val jsonl : registry -> string
(** Flat JSONL event stream: one [{"type":"counter"|"histogram"|"span",...}]
    object per line, counters and histograms sorted by name, spans in
    completion order. *)

val jsonl_of : (string * registry) list -> string
(** Like {!jsonl} but for several registries; each is preceded by a
    [{"type":"registry","label":...}] line. *)

val counters_of_jsonl : string -> (string * int) list
(** Decode the counter lines of the {!jsonl} format (inverse of the
    counter part of {!jsonl}; ignores other line types). *)
