(** Deterministic observability: spans, counters and histograms.

    A {!registry} is an explicit value created by whoever builds a
    stack (see [Sfs_workload.Stacks.make]) and threaded down through
    constructors — there is no global registry.  All timestamps come
    from the [now_us] closure supplied at creation (in practice the
    simulated clock), never the wall clock, so two identical runs
    export byte-identical traces.

    Instrumentation entry points ({!add}, {!observe}, {!span}) take a
    [registry option]: passing [None] makes them no-ops, so
    uninstrumented stacks pay only an option test. *)

type histogram

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_depth : int;  (** nesting depth at the time the span opened *)
  sp_args : (string * string) list;
  sp_trace : int;  (** trace id; [0] = not part of any trace *)
  sp_span : int;  (** span id, unique within the registry *)
  sp_parent : int;  (** causal parent span id; [0] = root *)
  sp_remote : bool;  (** parent context was adopted from the wire *)
}

type ctx = { cx_trace : int; cx_span : int }
(** A compact causal context, small enough to piggyback on every RPC:
    the trace (one per top-level op) and the sending span.  Ids are
    per-registry counters — deterministic, never derived from key
    material or the Prng. *)

(** One sampled critical-path decomposition of an RPC exchange: named
    additive segments that sum to [cp_wall_us] on the simulated clock
    (exactly, modulo float rounding — the tests check it).  The [_ctr]
    fields carry the integer microseconds each direction's seal billed
    to its [crypto_us_out] counter, for reconciliation. *)
type cp_sample = {
  cp_op : string;
  cp_trace : int;
  cp_span : int;
  cp_start_us : float;
  cp_wall_us : float;
  cp_segments : (string * float) list;
  cp_crypto_up_ctr : int;
  cp_crypto_down_ctr : int;
}

type registry

val create : ?max_spans:int -> now_us:(unit -> float) -> unit -> registry
(** [create ~now_us ()] makes an empty registry.  At most [max_spans]
    spans are retained (default 200_000); further completions bump the
    [obs.spans_dropped] counter instead of allocating. *)

val now_us : registry -> float

val add : registry option -> string -> int -> unit
[@@sfs.sink "obs"]
(** [add r name n] bumps counter [name] by [n]. *)

val incr : registry option -> string -> unit
[@@sfs.sink "obs"]
val counter : registry -> string -> int

val observe : registry option -> string -> int -> unit
[@@sfs.sink "obs"]
(** [observe r name v] records integer observation [v] (microseconds or
    bytes, rounded by the caller) into histogram [name].  Buckets are
    power-of-two sized: bucket index = bit count of [v]. *)

val span : ?args:(string * string) list -> registry option -> cat:string -> string -> (unit -> 'a) -> 'a
[@@sfs.sink "obs"]
(** [span r ~cat name f] runs [f], recording a span on completion —
    whether [f] returns or raises.  The span inherits (trace, parent)
    from the innermost enclosing {!span_root}/{!span}/{!with_ctx} and
    is itself the causal parent for the extent of [f]. *)

val span_root : ?args:(string * string) list -> registry option -> cat:string -> string -> (unit -> 'a) -> 'a
[@@sfs.sink "obs"]
(** Like {!span} but starts a fresh trace: the root of a top-level op
    (a [Cachefs]/[Client] entry point). *)

val current : registry option -> ctx option
(** The innermost active causal context, to put on the wire.  [None]
    when no trace is active (or no registry). *)

val with_ctx : registry option -> ctx option -> (unit -> 'a) -> 'a
(** [with_ctx r ctx f] adopts a context received over the wire for the
    extent of [f]: spans recorded inside become remote children of the
    sender's span (drawn as flow arrows by {!chrome_trace}).  A [None]
    or traceless context just runs [f]. *)

type open_span
(** An explicitly bracketed span, for ops whose begin and end live in
    different call frames (pipelined RPCs).  Captures its causal parent
    at {!span_begin} but does not occupy the context stack, so
    overlapping in-flight ops are fine.  sfslint rule SL012 checks that
    every [span_begin] has a reachable [span_end]. *)

val span_begin : registry option -> cat:string -> string -> open_span
[@@sfs.sink "obs"]

val span_end : ?args:(string * string) list -> ?end_us:float -> open_span -> unit
[@@sfs.sink "obs"]
(** Records the span; idempotent.  [?end_us] supplies the true
    completion time for ops awaited after they finished on the
    simulated clock. *)

val open_ctx : open_span -> ctx option
(** The context of an open span, to piggyback on its own RPC. *)

val spans : registry -> span list
(** Completed spans in completion order. *)

val dropped_spans : registry -> int

val cp_record : registry option -> cp_sample -> unit
[@@sfs.sink "obs"]
(** Append a critical-path sample (bounded like spans; overflow bumps
    the [obs.cp_dropped] counter). *)

val cp_samples : registry -> cp_sample list
(** Recorded samples, oldest first. *)

type histo_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : (int * int) list;  (** (bucket index, count), sparse, ascending *)
}

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_histograms : (string * histo_snapshot) list;  (** sorted by name *)
  snap_spans : span list;  (** completion order *)
}

val snapshot : registry -> snapshot
val snap_counter : snapshot -> string -> int

val histo_of_observations : int list -> histo_snapshot
(** Pure constructor for property tests. *)

val histo_merge : histo_snapshot -> histo_snapshot -> histo_snapshot
(** Pointwise sum of counts, sums and buckets; associative and
    commutative because everything is an integer. *)

val chrome_trace : ?ops_only:bool -> (string * registry) list -> string
(** Chrome [trace_event] JSON (Perfetto / chrome://tracing loadable).
    Each [(label, registry)] pair becomes one process, named [label].
    Spans in a trace carry trace/span/parent args; remote children get
    "s"/"f" flow-arrow pairs from their causing span.  [~ops_only:true]
    keeps only spans belonging to a trace (the [--trace-ops] view). *)

val jsonl : registry -> string
(** Flat JSONL event stream: one
    [{"type":"counter"|"histogram"|"span"|"critical_path",...}] object
    per line, counters and histograms sorted by name, spans and
    critical-path samples in completion order. *)

val jsonl_of : (string * registry) list -> string
(** Like {!jsonl} but for several registries; each is preceded by a
    [{"type":"registry","label":...}] line. *)

val json_escape : string -> string
(** JSON string-body escaping, shared with the other exporters. *)

val counters_of_jsonl : string -> (string * int) list
(** Decode the counter lines of the {!jsonl} format (inverse of the
    counter part of {!jsonl}; ignores other line types). *)
