(** Mergeable log-linear quantile sketch (HDR-histogram style).

    Integer observations land in fixed buckets: values below 32 are
    exact; larger values use 16 sub-buckets per power-of-two octave,
    bounding relative quantile error by 1/16.  The bucket layout is a
    pure function of the value, so {!merge} is a pointwise array sum —
    exactly associative and commutative, independent of observation
    order, and byte-identically printable.  This is the primitive the
    fleet-scale p50/p99 aggregation needs: thousands of clients each
    keep a sketch and the results merge without raw samples. *)

type t

val create : unit -> t

val observe : t -> int -> unit
[@@sfs.sink "obs"]
(** [observe t v] records [v] (microseconds or bytes; [v <= 0] maps to
    bucket 0). *)

val count : t -> int
val sum : t -> int

val of_observations : int list -> t

val merge : t -> t -> t
(** Pointwise sum; associative, commutative, order-independent. *)

val equal : t -> t -> bool

val quantile : t -> float -> int
(** [quantile t q] returns the upper edge of the bucket holding the
    [ceil (q * count)]-th smallest observation — never below the true
    order statistic [o], and at most [o/16 + 1] above it.  [0] on an
    empty sketch. *)

val to_json : t -> string
(** [{"count":N,"sum":S,"buckets":[[i,n],...]}] — sparse, ascending,
    deterministic. *)

(**/**)

val bucket_of : int -> int
val bucket_upper : int -> int
(** Exposed for the property tests: [bucket_upper (bucket_of v) >= v]
    with bounded relative slack. *)
