(* Mergeable log-linear quantile sketch (HDR-histogram style).

   Fixed bucket layout, integer observations: values below [linear_max]
   get one bucket each (exact); larger values fall into log-linear
   buckets — each power-of-two octave is split into [subbuckets] equal
   sub-ranges, bounding the relative quantile error by
   1/subbuckets = 1/16.  The layout is a pure function of the value, so
   merging is a pointwise array sum: exactly associative and
   commutative, and independent of observation order — the property the
   fleet-scale aggregation path needs.

   Quantile estimates return the *upper edge* of the bucket holding the
   requested rank, so estimates never undershoot the true order
   statistic and overshoot it by at most [v/16 + 1]. *)

let subbuckets = 16
let linear_max = 2 * subbuckets (* values < 32 are exact *)

(* Largest value we distinguish: 2^62-ish is unreachable for simulated
   microseconds; 60 octaves above the linear range is plenty. *)
let octaves = 56
let nbuckets = linear_max + (octaves * subbuckets)

type t = { mutable count : int; mutable sum : int; buckets : int array }

let create () : t = { count = 0; sum = 0; buckets = Array.make nbuckets 0 }

(* Index of the most significant bit of [v] (v > 0): 2^m <= v < 2^(m+1). *)
let msb (v : int) : int =
  let m = ref 0 and v = ref v in
  while !v > 1 do
    incr m;
    v := !v lsr 1
  done;
  !m

let bucket_of (v : int) : int =
  if v <= 0 then 0
  else if v < linear_max then v
  else begin
    let m = msb v in
    (* m >= 5 here.  The top [subbuckets] sub-ranges of octave m are
       indexed by bits m-1..m-4 of v, i.e. (v lsr (m-4)) in [16,31]. *)
    let b = ((m - 4) * subbuckets) + (v lsr (m - 4)) in
    if b >= nbuckets then nbuckets - 1 else b
  end

(* Upper edge (inclusive) of bucket [b]: the largest value mapping there. *)
let bucket_upper (b : int) : int =
  if b < linear_max then b
  else begin
    let g = (b - subbuckets) / subbuckets in
    let m = g + 4 in
    let s = b - ((m - 4) * subbuckets) in
    ((s + 1) lsl (m - 4)) - 1
  end

let observe (t : t) (v : int) : unit =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count (t : t) : int = t.count
let sum (t : t) : int = t.sum

let of_observations (vs : int list) : t =
  let t = create () in
  List.iter (observe t) vs;
  t

let merge (a : t) (b : t) : t =
  let t = create () in
  t.count <- a.count + b.count;
  t.sum <- a.sum + b.sum;
  for i = 0 to nbuckets - 1 do
    t.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  t

let equal (a : t) (b : t) : bool =
  a.count = b.count && a.sum = b.sum && a.buckets = b.buckets

(* [quantile t q]: upper edge of the bucket containing the ceil(q*count)-th
   smallest observation (1-based).  0 on an empty sketch. *)
let quantile (t : t) (q : float) : int =
  if t.count = 0 then 0
  else begin
    let r = int_of_float (ceil (q *. float_of_int t.count)) in
    let r = if r < 1 then 1 else if r > t.count then t.count else r in
    let cum = ref 0 and b = ref 0 and found = ref (nbuckets - 1) in
    (let continue = ref true in
     while !continue && !b < nbuckets do
       cum := !cum + t.buckets.(!b);
       if !cum >= r then begin
         found := !b;
         continue := false
       end;
       incr b
     done);
    bucket_upper !found
  end

(* Sparse, ascending, deterministic: merging then printing is
   independent of observation order. *)
let to_json (t : t) : string =
  let bs = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then bs := Printf.sprintf "[%d,%d]" i t.buckets.(i) :: !bs
  done;
  Printf.sprintf "{\"count\":%d,\"sum\":%d,\"buckets\":[%s]}" t.count t.sum
    (String.concat "," !bs)
