(** Critical-path aggregation over {!Obs.cp_sample}s: per-op-type
    sample counts, additive segment totals, and wall-time quantiles
    from the mergeable {!Sketch}.  Deterministic output: ops sorted by
    name, segments in first-appearance order. *)

type op_agg = {
  oa_op : string;
  oa_count : int;
  oa_wall_us : float;  (** total wall time across samples *)
  oa_segments : (string * float) list;  (** totals, first-appearance order *)
  oa_sketch : Sketch.t;  (** per-sample wall microseconds, rounded *)
}

val per_op : Obs.registry -> op_agg list
(** Aggregate a registry's samples, sorted by op name. *)

val json_of_op : op_agg -> string
(** One [op: {count,wall_us,p50_us,p95_us,p99_us,segments}] JSON
    object member. *)

val critical_path_json : (string * Obs.registry) list -> string option
(** Per-figure report: a JSON object keyed by registry label, one
    {!json_of_op} member per op; [None] when nothing was sampled. *)
