(* Deterministic observability: spans, counters and histograms keyed to
   the simulated clock.

   Everything here is driven by a [now_us] closure supplied at registry
   creation time — in practice [Sfs_net.Simclock.now_us] — never the
   wall clock, so two identical runs produce byte-identical exports.
   The registry is an explicit value created by whoever builds a stack
   and threaded down through constructors; there is no module-toplevel
   mutable state and no global default registry.

   Instrumentation sites receive a [registry option] so that a stack
   built without observability pays nothing but an option test.  All
   histogram observations are integers (microseconds or bytes, rounded
   by the caller) so that merging histograms is exactly associative and
   commutative — a property the test suite checks. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array; (* indexed by bit-count of the observed value *)
}

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_us : float;
  sp_dur_us : float;
  sp_depth : int;
  sp_args : (string * string) list;
  sp_trace : int; (* 0 = not part of any trace *)
  sp_span : int; (* 0 = no identity (registry-less span never recorded) *)
  sp_parent : int; (* 0 = root *)
  sp_remote : bool; (* parent context was adopted from the wire *)
}

type ctx = { cx_trace : int; cx_span : int }

(* The causal-context stack.  Execution is fully synchronous and
   single-threaded on the simulated clock, so dynamic extent equals
   causal extent: the frame on top of the stack is the op responsible
   for whatever instrumentation fires now.  [fr_remote] marks frames
   pushed by {!with_ctx} — a context that arrived over the wire — so
   spans recorded under them can be drawn as cross-component flow
   arrows. *)
type frame = { fr_trace : int; fr_span : int; fr_remote : bool }

(* One sampled critical-path decomposition: an RPC exchange broken into
   additive segments that sum to [cp_wall_us] (checked by the tests).
   The [_ctr] fields carry the exact integer each direction's
   [Channel.seal] billed to its crypto_us counter, so aggregate crypto
   attribution can be reconciled against the counters. *)
type cp_sample = {
  cp_op : string;
  cp_trace : int;
  cp_span : int;
  cp_start_us : float;
  cp_wall_us : float;
  cp_segments : (string * float) list;
  cp_crypto_up_ctr : int;
  cp_crypto_down_ctr : int;
}

type registry = {
  now_us : unit -> float;
  max_spans : int;
  mutable spans : span list; (* completion order, newest first *)
  mutable span_count : int;
  mutable dropped_spans : int;
  mutable depth : int;
  counters : (string, int ref) Hashtbl.t;
  histos : (string, histogram) Hashtbl.t;
  (* trace ids are plain counters — deterministic by construction, and
     never derived from key material or the Prng *)
  mutable next_span : int;
  mutable next_trace : int;
  mutable ctx_stack : frame list;
  mutable cps : cp_sample list; (* newest first *)
  mutable cp_count : int;
  mutable dropped_cps : int;
}

let create ?(max_spans = 200_000) ~(now_us : unit -> float) () : registry =
  {
    now_us;
    max_spans;
    spans = [];
    span_count = 0;
    dropped_spans = 0;
    depth = 0;
    counters = Hashtbl.create 64;
    histos = Hashtbl.create 16;
    next_span = 1;
    next_trace = 1;
    ctx_stack = [];
    cps = [];
    cp_count = 0;
    dropped_cps = 0;
  }

let now_us (r : registry) : float = r.now_us ()

(* -- counters -------------------------------------------------------- *)

let add (r : registry option) (name : string) (n : int) : unit =
  match r with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.counters name with
      | Some c -> c := !c + n
      | None -> Hashtbl.replace r.counters name (ref n))

let incr (r : registry option) (name : string) : unit = add r name 1

let counter (r : registry) (name : string) : int =
  match Hashtbl.find_opt r.counters name with Some c -> !c | None -> 0

(* -- histograms ------------------------------------------------------ *)

let buckets = 64

(* Bucket index = number of significant bits of the value: 0 for v <= 0,
   1 for 1, 2 for 2..3, 3 for 4..7, ... capped at 63.  Cheap, total, and
   stable across platforms. *)
let bucket_of (v : int) : int =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    if !b > buckets - 1 then buckets - 1 else !b
  end

let observe (r : registry option) (name : string) (v : int) : unit =
  match r with
  | None -> ()
  | Some r ->
      let h =
        match Hashtbl.find_opt r.histos name with
        | Some h -> h
        | None ->
            let h = { h_count = 0; h_sum = 0; h_buckets = Array.make buckets 0 } in
            Hashtbl.replace r.histos name h;
            h
      in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      let b = bucket_of v in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1

(* -- spans ----------------------------------------------------------- *)

let fresh_span_id (r : registry) : int =
  let id = r.next_span in
  r.next_span <- id + 1;
  id

let record_span (r : registry) (sp : span) : unit =
  if r.span_count >= r.max_spans then r.dropped_spans <- r.dropped_spans + 1
  else begin
    r.spans <- sp :: r.spans;
    r.span_count <- r.span_count + 1
  end

(* A span is recorded on completion, whether the body returns or raises:
   a body that fails (e.g. a channel open rejecting a bad MAC, or an
   RPC raising [Simnet.Timeout]) must still leave a well-formed trace.
   Depth is tracked so exporters can check nesting.

   Every span gets a fresh span id and inherits (trace, parent) from
   the top of the causal-context stack, pushing itself for its dynamic
   extent — so an [Obs.span] fired anywhere below an op root attaches
   to that op without any explicit plumbing. *)
let span_in ~(root : bool) ?(args = []) (r : registry option) ~(cat : string) (name : string)
    (f : unit -> 'a) : 'a =
  match r with
  | None -> f ()
  | Some r ->
      let start = r.now_us () in
      let depth = r.depth in
      let sid = fresh_span_id r in
      let trace, parent, remote =
        if root then begin
          let t = r.next_trace in
          r.next_trace <- t + 1;
          (t, 0, false)
        end
        else
          match r.ctx_stack with
          | [] -> (0, 0, false)
          | fr :: _ -> (fr.fr_trace, fr.fr_span, fr.fr_remote)
      in
      r.depth <- depth + 1;
      r.ctx_stack <- { fr_trace = trace; fr_span = sid; fr_remote = false } :: r.ctx_stack;
      let finish () =
        r.depth <- depth;
        (match r.ctx_stack with _ :: rest -> r.ctx_stack <- rest | [] -> ());
        record_span r
          {
            sp_name = name;
            sp_cat = cat;
            sp_start_us = start;
            sp_dur_us = r.now_us () -. start;
            sp_depth = depth;
            sp_args = args;
            sp_trace = trace;
            sp_span = sid;
            sp_parent = parent;
            sp_remote = remote;
          }
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let span ?args (r : registry option) ~(cat : string) (name : string) (f : unit -> 'a) : 'a =
  span_in ~root:false ?args r ~cat name f

let span_root ?args (r : registry option) ~(cat : string) (name : string) (f : unit -> 'a) : 'a =
  span_in ~root:true ?args r ~cat name f

let current (r : registry option) : ctx option =
  match r with
  | None -> None
  | Some r -> (
      match r.ctx_stack with
      | { fr_trace; fr_span; _ } :: _ when fr_trace > 0 ->
          Some { cx_trace = fr_trace; cx_span = fr_span }
      | _ -> None)

(* Adopt a context that arrived over the wire for the extent of [f]:
   spans recorded inside become remote children of the sender's span. *)
let with_ctx (r : registry option) (ctx : ctx option) (f : unit -> 'a) : 'a =
  match (r, ctx) with
  | None, _ | _, None -> f ()
  | Some r, Some cx when cx.cx_trace > 0 ->
      r.ctx_stack <-
        { fr_trace = cx.cx_trace; fr_span = cx.cx_span; fr_remote = true } :: r.ctx_stack;
      let pop () = match r.ctx_stack with _ :: rest -> r.ctx_stack <- rest | [] -> () in
      (match f () with
      | v ->
          pop ();
          v
      | exception e ->
          pop ();
          (* sfstaint: allow TNT004 — re-raises the callee's exception untouched after unwinding the context stack; no secret-derived value is interpolated *)
          raise e)
  | _ -> f ()

(* Explicitly bracketed spans, for ops whose begin and end are in
   different call frames (pipelined RPCs: submitted now, completed when
   the mux drains).  The open span captures its causal parent at begin
   time but does NOT occupy the context stack — overlapping in-flight
   ops would otherwise unwind out of order.  [span_end] is idempotent
   and accepts an explicit end time so an op awaited late can still be
   recorded with its true completion time. *)
type open_span = {
  os_reg : registry option;
  os_name : string;
  os_cat : string;
  os_start_us : float;
  os_sid : int;
  os_trace : int;
  os_parent : int;
  os_remote : bool;
  mutable os_closed : bool;
}

let span_begin (r : registry option) ~(cat : string) (name : string) : open_span =
  match r with
  | None ->
      {
        os_reg = None;
        os_name = name;
        os_cat = cat;
        os_start_us = 0.0;
        os_sid = 0;
        os_trace = 0;
        os_parent = 0;
        os_remote = false;
        os_closed = false;
      }
  | Some reg ->
      let trace, parent, remote =
        match reg.ctx_stack with
        | [] -> (0, 0, false)
        | fr :: _ -> (fr.fr_trace, fr.fr_span, fr.fr_remote)
      in
      {
        os_reg = r;
        os_name = name;
        os_cat = cat;
        os_start_us = reg.now_us ();
        os_sid = fresh_span_id reg;
        os_trace = trace;
        os_parent = parent;
        os_remote = remote;
        os_closed = false;
      }

let span_end ?(args = []) ?end_us (os : open_span) : unit =
  match os.os_reg with
  | None -> ()
  | Some r ->
      if not os.os_closed then begin
        os.os_closed <- true;
        let finish = match end_us with Some t -> t | None -> r.now_us () in
        record_span r
          {
            sp_name = os.os_name;
            sp_cat = os.os_cat;
            sp_start_us = os.os_start_us;
            sp_dur_us = finish -. os.os_start_us;
            sp_depth = r.depth;
            sp_args = args;
            sp_trace = os.os_trace;
            sp_span = os.os_sid;
            sp_parent = os.os_parent;
            sp_remote = os.os_remote;
          }
      end

let open_ctx (os : open_span) : ctx option =
  if os.os_trace > 0 then Some { cx_trace = os.os_trace; cx_span = os.os_sid } else None

let spans (r : registry) : span list = List.rev r.spans
let dropped_spans (r : registry) : int = r.dropped_spans

(* -- critical-path samples ------------------------------------------- *)

let cp_record (r : registry option) (s : cp_sample) : unit =
  match r with
  | None -> ()
  | Some r ->
      if r.cp_count >= r.max_spans then r.dropped_cps <- r.dropped_cps + 1
      else begin
        r.cps <- s :: r.cps;
        r.cp_count <- r.cp_count + 1
      end

let cp_samples (r : registry) : cp_sample list = List.rev r.cps

(* -- snapshots ------------------------------------------------------- *)

type histo_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_buckets : (int * int) list; (* (bucket index, count), sparse, ascending *)
}

type snapshot = {
  snap_counters : (string * int) list; (* sorted by name *)
  snap_histograms : (string * histo_snapshot) list; (* sorted by name *)
  snap_spans : span list; (* completion order *)
}

let snapshot_histogram (h : histogram) : histo_snapshot =
  let bs = ref [] in
  for i = buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then bs := (i, h.h_buckets.(i)) :: !bs
  done;
  { hs_count = h.h_count; hs_sum = h.h_sum; hs_buckets = !bs }

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot (r : registry) : snapshot =
  let counters = Hashtbl.fold (fun k c acc -> (k, !c) :: acc) r.counters [] in
  let counters =
    if r.dropped_spans > 0 then ("obs.spans_dropped", r.dropped_spans) :: counters else counters
  in
  let counters =
    if r.dropped_cps > 0 then ("obs.cp_dropped", r.dropped_cps) :: counters else counters
  in
  let histos = Hashtbl.fold (fun k h acc -> (k, snapshot_histogram h) :: acc) r.histos [] in
  {
    snap_counters = List.sort by_name counters;
    snap_histograms = List.sort by_name histos;
    snap_spans = List.rev r.spans;
  }

let snap_counter (s : snapshot) (name : string) : int =
  match List.assoc_opt name s.snap_counters with Some n -> n | None -> 0

(* Pure constructors used by the property tests: a snapshot built from a
   list of observations, and a pointwise merge. *)
let histo_of_observations (vs : int list) : histo_snapshot =
  let b = Array.make buckets 0 in
  let count = ref 0 and sum = ref 0 in
  List.iter
    (fun v ->
      count := !count + 1;
      sum := !sum + v;
      let i = bucket_of v in
      b.(i) <- b.(i) + 1)
    vs;
  let bs = ref [] in
  for i = buckets - 1 downto 0 do
    if b.(i) > 0 then bs := (i, b.(i)) :: !bs
  done;
  { hs_count = !count; hs_sum = !sum; hs_buckets = !bs }

let histo_merge (a : histo_snapshot) (b : histo_snapshot) : histo_snapshot =
  let arr = Array.make buckets 0 in
  List.iter (fun (i, n) -> arr.(i) <- arr.(i) + n) a.hs_buckets;
  List.iter (fun (i, n) -> arr.(i) <- arr.(i) + n) b.hs_buckets;
  let bs = ref [] in
  for i = buckets - 1 downto 0 do
    if arr.(i) > 0 then bs := (i, arr.(i)) :: !bs
  done;
  { hs_count = a.hs_count + b.hs_count; hs_sum = a.hs_sum + b.hs_sum; hs_buckets = !bs }

(* -- JSON helpers ---------------------------------------------------- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us (v : float) : string = Printf.sprintf "%.3f" v

(* -- Chrome trace_event export --------------------------------------- *)

(* One process per registry (pid = position + 1), named via an "M"
   metadata event; spans become "X" complete events on tid 0.  Spans
   with a trace identity carry it in their args, and spans whose parent
   context was adopted from the wire additionally get an "s"/"f" flow
   pair drawing an arrow from the causing span to them (Perfetto
   renders these as flow arrows).  [?ops_only] keeps only spans that
   belong to some trace — the [--trace-ops] view.  Load the result in
   Perfetto or chrome://tracing. *)
let chrome_trace ?(ops_only = false) (regs : (string * registry) list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf s
  in
  List.iteri
    (fun i (label, _) ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
           (i + 1) (json_escape label)))
    regs;
  List.iteri
    (fun i (_, r) ->
      let pid = i + 1 in
      (* span id -> span, for anchoring flow arrows at the parent. *)
      let by_sid : (int, span) Hashtbl.t = Hashtbl.create 256 in
      List.iter (fun sp -> if sp.sp_span > 0 then Hashtbl.replace by_sid sp.sp_span sp) r.spans;
      List.iter
        (fun sp ->
          if (not ops_only) || sp.sp_trace > 0 then begin
            let ids =
              if sp.sp_trace > 0 then
                Printf.sprintf ",\"trace\":%d,\"span\":%d,\"parent\":%d" sp.sp_trace sp.sp_span
                  sp.sp_parent
              else ""
            in
            let args =
              match sp.sp_args with
              | [] -> Printf.sprintf "{\"depth\":%d%s}" sp.sp_depth ids
              | kvs ->
                  let fields =
                    List.map
                      (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                      kvs
                  in
                  Printf.sprintf "{\"depth\":%d%s,%s}" sp.sp_depth ids (String.concat "," fields)
            in
            emit
              (Printf.sprintf
                 "{\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%s,\"dur\":%s,\"args\":%s}"
                 pid (json_escape sp.sp_cat) (json_escape sp.sp_name) (us sp.sp_start_us)
                 (us sp.sp_dur_us) args);
            if sp.sp_remote && sp.sp_parent > 0 then
              match Hashtbl.find_opt by_sid sp.sp_parent with
              | None -> () (* parent dropped or still open: no arrow *)
              | Some parent ->
                  (* ids are unique per registry; offset by pid so a
                     multi-registry export never collides. *)
                  let flow_id = (pid * 100_000_000) + sp.sp_span in
                  emit
                    (Printf.sprintf
                       "{\"ph\":\"s\",\"pid\":%d,\"tid\":0,\"cat\":\"flow\",\"name\":\"rpc\",\"id\":%d,\"ts\":%s}"
                       pid flow_id (us parent.sp_start_us));
                  emit
                    (Printf.sprintf
                       "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":0,\"cat\":\"flow\",\"name\":\"rpc\",\"id\":%d,\"ts\":%s}"
                       pid flow_id (us sp.sp_start_us))
          end)
        (List.rev r.spans))
    regs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* -- JSONL export ---------------------------------------------------- *)

let jsonl_into (buf : Buffer.t) (r : registry) : unit =
  let s = snapshot r in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n" (json_escape name) v))
    s.snap_counters;
  List.iter
    (fun (name, h) ->
      let bs = List.map (fun (i, n) -> Printf.sprintf "[%d,%d]" i n) h.hs_buckets in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}\n"
           (json_escape name) h.hs_count h.hs_sum (String.concat "," bs)))
    s.snap_histograms;
  List.iter
    (fun sp ->
      let ids =
        if sp.sp_trace > 0 then
          Printf.sprintf ",\"trace\":%d,\"span\":%d,\"parent\":%d%s" sp.sp_trace sp.sp_span
            sp.sp_parent
            (if sp.sp_remote then ",\"remote\":true" else "")
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"span\",\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%s,\"dur\":%s,\"depth\":%d%s}\n"
           (json_escape sp.sp_cat) (json_escape sp.sp_name) (us sp.sp_start_us) (us sp.sp_dur_us)
           sp.sp_depth ids))
    s.snap_spans;
  List.iter
    (fun cp ->
      let segs =
        List.map
          (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (us v))
          cp.cp_segments
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"type\":\"critical_path\",\"op\":\"%s\",\"trace\":%d,\"span\":%d,\"ts\":%s,\"wall\":%s,\"segments\":{%s}}\n"
           (json_escape cp.cp_op) cp.cp_trace cp.cp_span (us cp.cp_start_us) (us cp.cp_wall_us)
           (String.concat "," segs)))
    (List.rev r.cps)

let jsonl (r : registry) : string =
  let buf = Buffer.create 4096 in
  jsonl_into buf r;
  Buffer.contents buf

let jsonl_of (regs : (string * registry) list) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (label, r) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"registry\",\"label\":\"%s\"}\n" (json_escape label));
      jsonl_into buf r)
    regs;
  Buffer.contents buf

(* Decode the counter lines of our own JSONL format (and only those).
   This is not a general JSON parser: it recognises exactly the lines
   [jsonl] emits, which is what the round-trip property needs. *)
let counters_of_jsonl (s : string) : (string * int) list =
  let lines = String.split_on_char '\n' s in
  let prefix = "{\"type\":\"counter\",\"name\":\"" in
  let unescape str =
    let buf = Buffer.create (String.length str) in
    let i = ref 0 in
    let n = String.length str in
    while !i < n do
      (if str.[!i] = '\\' && !i + 1 < n then begin
         (match str.[!i + 1] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'u' when !i + 5 < n ->
             let code = int_of_string ("0x" ^ String.sub str (!i + 2) 4) in
             Buffer.add_char buf (Char.chr (code land 0xff));
             i := !i + 4
         | c -> Buffer.add_char buf c);
         i := !i + 2
       end
       else begin
         Buffer.add_char buf str.[!i];
         i := !i + 1
       end)
    done;
    Buffer.contents buf
  in
  List.filter_map
    (fun line ->
      if String.length line > String.length prefix && String.sub line 0 (String.length prefix) = prefix
      then begin
        let rest = String.sub line (String.length prefix) (String.length line - String.length prefix) in
        (* rest is the name (possibly containing escapes), a closing
           quote, then the value field; find the closing unescaped
           quote. *)
        let n = String.length rest in
        let rec find_quote i =
          if i >= n then None
          else if rest.[i] = '\\' then find_quote (i + 2)
          else if rest.[i] = '"' then Some i
          else find_quote (i + 1)
        in
        match find_quote 0 with
        | None -> None
        | Some q ->
            let name = unescape (String.sub rest 0 q) in
            let tail = String.sub rest q (n - q) in
            let vprefix = "\",\"value\":" in
            if String.length tail > String.length vprefix
               && String.sub tail 0 (String.length vprefix) = vprefix
            then
              let vs =
                String.sub tail (String.length vprefix)
                  (String.length tail - String.length vprefix)
              in
              let vs =
                match String.index_opt vs '}' with
                | Some j -> String.sub vs 0 j
                | None -> vs
              in
              match int_of_string_opt vs with Some v -> Some (name, v) | None -> None
            else None
      end
      else None)
    lines
