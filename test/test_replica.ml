(* The read-only CDN tier: verification cache, incremental snapshots,
   publisher -> mirror fan-out, root refresh, and the tamper property
   (a flipped bit anywhere in a served frame must never surface through
   the file system interface). *)

module Simclock = Sfs_net.Simclock
module Simnet = Sfs_net.Simnet
module Costmodel = Sfs_net.Costmodel
module Simos = Sfs_os.Simos
module Memfs = Sfs_nfs.Memfs
module Nfs_types = Sfs_nfs.Nfs_types
module Prng = Sfs_crypto.Prng
module Rabin = Sfs_crypto.Rabin
module Ro = Sfs_proto.Readonly_proto
module Readonly = Sfs_core.Readonly
module Replica = Sfs_core.Replica
module Vcache = Sfs_core.Vcache
module Obs = Sfs_obs.Obs

let root_cred = Simos.cred_of_user Simos.root_user

(* --- Vcache: bounded LRU over verified objects --- *)

let test_vcache_lru () =
  let clock = Simclock.create () in
  let obs = Obs.create ~now_us:(fun () -> Simclock.now_us clock) () in
  let vc = Vcache.create ~obs ~cap:2 () in
  let o n = Ro.O_file (String.make 8 n) in
  Vcache.add vc ~hash:"a" ~bytes:8 (o 'a');
  Vcache.add vc ~hash:"b" ~bytes:8 (o 'b');
  Testkit.check_bool "a hits" true (Vcache.find vc "a" <> None);
  (* 'b' is now least recently used; adding 'c' must evict it. *)
  Vcache.add vc ~hash:"c" ~bytes:8 (o 'c');
  Testkit.check_int "count stays at cap" 2 (Vcache.count vc);
  Testkit.check_bool "b evicted" true (Vcache.find vc "b" = None);
  Testkit.check_bool "a survived" true (Vcache.find vc "a" <> None);
  Testkit.check_bool "c present" true (Vcache.find vc "c" <> None);
  Testkit.check_int "bytes tracked" 16 (Vcache.bytes vc);
  Testkit.check_int "hits counted" 3 (Obs.counter obs "ro.verify.hit");
  Testkit.check_int "misses counted" 1 (Obs.counter obs "ro.verify.miss");
  Testkit.check_int "evictions counted" 1 (Obs.counter obs "ro.vcache.evict");
  Vcache.clear vc;
  Testkit.check_int "cleared" 0 (Vcache.count vc);
  Testkit.check_int "cleared bytes" 0 (Vcache.bytes vc)

(* --- Incremental snapshots --- *)

let mk_tree () =
  let clock = Simclock.create () in
  let now () = Nfs_types.time_of_us (Simclock.now_us clock) in
  let fs = Memfs.create ~fsid:1 ~now () in
  let dir name =
    match Memfs.mkdir fs root_cred ~dir:Memfs.root_id name ~mode:0o777 with
    | Ok (ino, _) -> ino
    | Error _ -> assert false
  in
  let file ~dir name data =
    match Memfs.create_file fs root_cred ~dir name ~mode:0o666 with
    | Ok (ino, _) -> (
        match Memfs.write fs root_cred ino ~off:0 data with
        | Ok _ -> ino
        | Error _ -> assert false)
    | Error _ -> assert false
  in
  let d0 = dir "d0" and d1 = dir "d1" in
  let f00 = file ~dir:d0 "f0" (String.make 4096 'x') in
  ignore (file ~dir:d0 "f1" (String.make 512 'y'));
  ignore (file ~dir:d1 "f0" (String.make 1024 'z'));
  (fs, d1, f00)

let stores_equal a b =
  Readonly.object_count a = Readonly.object_count b
  && Readonly.fold_store a (fun h _ acc -> acc && Readonly.mem b h) true

let test_incremental_snapshot () =
  let key = Rabin.generate ~bits:512 (Prng.create [ "replica-test"; "key" ]) in
  let fs, d1, f00 = mk_tree () in
  let s1 = Readonly.snapshot ~serial:1 ~key ~now_s:0 fs in
  let reused1, hashed1 = Readonly.reuse_stats s1 in
  Testkit.check_int "first build reuses nothing" 0 reused1;
  Testkit.check_bool "first build hashes everything" true (hashed1 >= 6);
  (* No mutation: the incremental rebuild re-hashes only the directory
     spine, and lands on the identical signed root. *)
  let s2 = Readonly.snapshot ~serial:2 ~prev:s1 ~key ~now_s:0 fs in
  Testkit.check_bool "same tree, same root"
    true
    ((Readonly.fsinfo s2).Ro.root_hash = (Readonly.fsinfo s1).Ro.root_hash);
  let reused2, hashed2 = Readonly.reuse_stats s2 in
  Testkit.check_int "all three leaves reused" 3 reused2;
  Testkit.check_bool "only directories re-hashed" true (hashed2 = 3);
  Testkit.check_bool "fresh bytes shrink" true
    (Readonly.fresh_bytes s2 < Readonly.fresh_bytes s1 / 4);
  (* Mutate one file: the incremental build must agree object-for-object
     with a from-scratch build of the same tree (the oracle). *)
  (match Memfs.write fs root_cred f00 ~off:0 (String.make 4096 'X') with
  | Ok _ -> ()
  | Error _ -> assert false);
  ignore
    (match Memfs.create_file fs root_cred ~dir:d1 "f9" ~mode:0o666 with
    | Ok (ino, _) -> Memfs.write fs root_cred ino ~off:0 "fresh"
    | Error _ -> assert false);
  let s3 = Readonly.snapshot ~serial:3 ~prev:s2 ~key ~now_s:0 fs in
  let oracle = Readonly.snapshot ~serial:3 ~key ~now_s:0 fs in
  Testkit.check_string "roots agree with the oracle"
    (Sfs_util.Hex.encode (Readonly.fsinfo oracle).Ro.root_hash)
    (Sfs_util.Hex.encode (Readonly.fsinfo s3).Ro.root_hash);
  Testkit.check_bool "stores agree with the oracle" true (stores_equal s3 oracle);
  let reused3, _ = Readonly.reuse_stats s3 in
  Testkit.check_int "clean leaves reused" 2 reused3;
  Testkit.check_bool "fresh bytes track the change" true
    (Readonly.fresh_bytes s3 < Readonly.fresh_bytes oracle)

(* --- Publisher -> mirror fan-out over Simnet --- *)

let mk_world () =
  let clock = Simclock.create () in
  let obs = Obs.create ~now_us:(fun () -> Simclock.now_us clock) () in
  let net = Simnet.create ~costs:Costmodel.default ~obs clock in
  (clock, obs, net)

let test_fanout_delta_and_evict () =
  let clock, obs, net = mk_world () in
  let fs, _, f00 = mk_tree () in
  ignore (Simnet.add_host net "pub.test");
  let key = Rabin.generate ~bits:512 (Prng.create [ "replica-test"; "fanout" ]) in
  let p = Replica.publisher ~obs ~net ~host:"pub.test" ~key ~clock fs in
  let mirrors =
    Array.init 2 (fun m ->
        let name = Printf.sprintf "m%d.test" m in
        let mi = Replica.mirror ~obs ~clock ~name () in
        Replica.attach net mi (Simnet.add_host net name);
        mi)
  in
  let targets = [ Replica.target ~addr:"m0.test"; Replica.target ~addr:"m1.test" ] in
  let s1 = Replica.publish p in
  Testkit.check_int "fan-out clean" 0 (Replica.fan_out p targets);
  Array.iter
    (fun mi ->
      Testkit.check_int "mirror holds the full store" (Readonly.object_count s1)
        (Replica.mirror_objects mi);
      match Replica.mirror_root mi with
      | Some i -> Testkit.check_int "mirror on serial 1" 1 i.Ro.serial
      | None -> Alcotest.fail "mirror has no root")
    mirrors;
  let pushed_full = Obs.counter obs "ro.fanout.objs" in
  Testkit.check_int "both mirrors got every object" (2 * Readonly.object_count s1) pushed_full;
  (* Find the hash of the file we are about to change, then change it:
     the next fan-out must push only the delta and evict the stale
     objects. *)
  (match Memfs.write fs root_cred f00 ~off:0 (String.make 4096 'Q') with
  | Ok _ -> ()
  | Error _ -> assert false);
  let s2 = Replica.publish p in
  Testkit.check_int "incremental fan-out clean" 0 (Replica.fan_out p targets);
  let pushed_delta = Obs.counter obs "ro.fanout.objs" - pushed_full in
  (* changed file + its directory + the root: 3 objects per mirror *)
  Testkit.check_int "only the delta travelled" 6 pushed_delta;
  Testkit.check_bool "stale objects evicted" true (Obs.counter obs "ro.fanout.evicted" >= 2);
  Array.iter
    (fun mi ->
      Testkit.check_int "mirror store converged" (Readonly.object_count s2)
        (Replica.mirror_objects mi);
      Readonly.fold_store s2
        (fun h _ () -> Testkit.check_bool "mirror has every live hash" true (Replica.mirror_has mi h))
        ();
      match Replica.mirror_root mi with
      | Some i -> Testkit.check_int "mirror on serial 2" 2 i.Ro.serial
      | None -> Alcotest.fail "mirror lost its root")
    mirrors;
  (* A snapshot's own server refuses fan-out procedures. *)
  let direct = Readonly.handle_request s2 (Ro.ro_request_to_string (Ro.Put_objs [])) in
  match Ro.ro_response_of_string direct with
  | Ok (Ro.Ro_error _) -> ()
  | _ -> Alcotest.fail "publisher-side server accepted a Put"

(* --- Client refresh: signature skip and rollback refusal --- *)

let test_refresh_skip_and_rollback () =
  let clock = Simclock.create () in
  let obs = Obs.create ~now_us:(fun () -> Simclock.now_us clock) () in
  let key = Rabin.generate ~bits:512 (Prng.create [ "replica-test"; "refresh" ]) in
  let fs, _, f00 = mk_tree () in
  let s1 = Readonly.snapshot ~serial:1 ~key ~now_s:0 fs in
  let served = ref s1 in
  let exchange bytes = Readonly.handle_request !served bytes in
  let c = Readonly.connect ~obs ~exchange ~pubkey:key.Rabin.pub ~clock () in
  Testkit.check_bool "connected on serial 1" true ((Readonly.current_fsinfo c).Ro.serial = 1);
  (* Same root, byte-identical reply: the Rabin verification is skipped
     but the refresh still happens. *)
  Readonly.refresh c;
  Readonly.refresh c;
  let verified, skipped = Readonly.refresh_checks c in
  Testkit.check_int "one real verification (connect)" 1 verified;
  Testkit.check_int "identical roots skipped" 2 skipped;
  Testkit.check_int "skip counted" 2 (Obs.counter obs "ro.root.skip");
  (* New snapshot: different bytes, full verification. *)
  (match Memfs.write fs root_cred f00 ~off:0 "changed" with
  | Ok _ -> ()
  | Error _ -> assert false);
  let s2 = Readonly.snapshot ~serial:2 ~prev:s1 ~key ~now_s:0 fs in
  served := s2;
  Readonly.refresh c;
  let verified, _ = Readonly.refresh_checks c in
  Testkit.check_int "new root verified for real" 2 verified;
  Testkit.check_bool "client moved to serial 2" true ((Readonly.current_fsinfo c).Ro.serial = 2);
  (* Rollback: serving the old (validly signed!) snapshot again must be
     refused across refresh — the serial floor survives. *)
  served := s1;
  (match Readonly.refresh c with
  | () -> Alcotest.fail "rollback accepted"
  | exception Readonly.Verification_failed _ -> ());
  Testkit.check_bool "client still on serial 2" true ((Readonly.current_fsinfo c).Ro.serial = 2)

(* --- Tamper property: one flipped bit never surfaces through ops --- *)

let flip_bit (s : string) (bit : int) : string =
  let b = Bytes.of_string s in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

(* Shared fixture: key generation is too slow per-property-case. *)
let tamper_fixture =
  lazy
    (let key = Rabin.generate ~bits:512 (Prng.create [ "replica-test"; "tamper" ]) in
     let fs, _, _ = mk_tree () in
     let snap = Readonly.snapshot ~serial:1 ~key ~now_s:0 fs in
     (key, snap))

let prop_flipped_object_bit =
  QCheck.Test.make ~count:200 ~name:"flipped object bit raises Verification_failed"
    QCheck.(pair small_nat (int_range 0 1_000_000))
    (fun (pick, bit) ->
      let key, snap = Lazy.force tamper_fixture in
      let clock = Simclock.create () in
      (* Collect the store deterministically and pick a victim object. *)
      let objs =
        List.sort compare (Readonly.fold_store snap (fun h bytes acc -> (h, bytes) :: acc) [])
      in
      let h, bytes = List.nth objs (pick mod List.length objs) in
      let bit = bit mod (String.length bytes * 8) in
      let tampered = flip_bit bytes bit in
      let exchange req =
        match Ro.ro_request_of_string req with
        | Ok Ro.Get_fsinfo -> Readonly.handle_request snap req
        | Ok (Ro.Get_obj h') when h' = h -> Ro.ro_response_to_string (Ro.Obj_is tampered)
        | Ok _ -> Readonly.handle_request snap req
        | Result.Error e -> failwith e
      in
      let c = Readonly.connect ~exchange ~pubkey:key.Rabin.pub ~clock () in
      (* Direct fetch must refuse the bytes... *)
      let fetch_refused =
        match Readonly.fetch c h with
        | _ -> false
        | exception Readonly.Verification_failed _ -> true
      in
      (* ...and through the file system interface the tampered object
         is an I/O error, never data. *)
      let ops = Readonly.ops c in
      let ops_refused =
        match ops.Sfs_nfs.Fs_intf.fs_getattr Simos.anonymous_cred h with
        | Ok _ -> false
        | Error Nfs_types.NFS3ERR_IO -> true
        | Error _ -> false
      in
      fetch_refused && ops_refused)

let prop_flipped_root_bit =
  QCheck.Test.make ~count:200 ~name:"flipped root-frame bit never yields a wrong root"
    QCheck.(int_range 0 100_000)
    (fun bit ->
      let key, snap = Lazy.force tamper_fixture in
      let clock = Simclock.create () in
      let genuine = Readonly.handle_request snap (Ro.ro_request_to_string Ro.Get_fsinfo) in
      let bit = bit mod (String.length genuine * 8) in
      let tampered = flip_bit genuine bit in
      let exchange req =
        match Ro.ro_request_of_string req with
        | Ok Ro.Get_fsinfo -> tampered
        | _ -> Readonly.handle_request snap req
      in
      match Readonly.connect ~exchange ~pubkey:key.Rabin.pub ~clock () with
      | c ->
          (* The only survivable flips are in XDR padding bytes the
             decoder ignores: the decoded root must then be exactly the
             genuine one — a harmless flip, not a forgery. *)
          Readonly.current_fsinfo c = Readonly.fsinfo snap
      | exception Readonly.Verification_failed _ -> true)

let suite =
  ( "replica",
    [
      Alcotest.test_case "vcache LRU" `Quick test_vcache_lru;
      Alcotest.test_case "incremental snapshot vs oracle" `Quick test_incremental_snapshot;
      Alcotest.test_case "fan-out delta and evict" `Quick test_fanout_delta_and_evict;
      Alcotest.test_case "refresh skip + rollback refusal" `Quick test_refresh_skip_and_rollback;
    ]
    @ Testkit.to_alcotest [ prop_flipped_object_bit; prop_flipped_root_bit ] )
