open Sfs_crypto
module Nat = Sfs_bignum.Nat

(* --- SHA-1: FIPS 180-1 test vectors --- *)

let test_sha1_vectors () =
  Testkit.check_string "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.hex "");
  Testkit.check_string "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.hex "abc");
  Testkit.check_string "two-block"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  Testkit.check_string "million a"
    "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_sha1_incremental () =
  (* Chunked updates agree with one-shot digests at every split point. *)
  let msg = String.init 300 (fun i -> Char.chr (i land 0xff)) in
  let expect = Sha1.digest msg in
  List.iter
    (fun k ->
      let c = Sha1.init () in
      Sha1.update c (String.sub msg 0 k);
      Sha1.update c (String.sub msg k (String.length msg - k));
      Testkit.check_string (Printf.sprintf "split %d" k) (Sfs_util.Hex.encode expect)
        (Sfs_util.Hex.encode (Sha1.final c)))
    [ 0; 1; 55; 56; 63; 64; 65; 128; 300 ]

let test_sha1_paper_duplication () =
  (* The paper duplicates SHA-1's input for HostIDs; sanity-check that the
     duplicated digest differs from the plain one. *)
  let s = "HostInfo,server.example.com,key" in
  Testkit.check_bool "distinct" false (Sha1.digest s = Sha1.digest (s ^ s))

(* --- HMAC-SHA1: RFC 2202 test vectors --- *)

let test_hmac_vectors () =
  Testkit.check_string "rfc2202 case 1"
    "b617318655057264e28bc0b6fb378c8ef146be00"
    (Sfs_util.Hex.encode (Mac.hmac ~key:(String.make 20 '\x0b') "Hi There"));
  Testkit.check_string "rfc2202 case 2"
    "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Sfs_util.Hex.encode (Mac.hmac ~key:"Jefe" "what do ya want for nothing?"));
  Testkit.check_string "rfc2202 case 3"
    "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (Sfs_util.Hex.encode (Mac.hmac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  Testkit.check_string "rfc2202 long key"
    "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Sfs_util.Hex.encode
       (Mac.hmac ~key:(String.make 80 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_mac_message () =
  let key = String.make 32 '\x42' in
  let tag = Mac.of_message ~key "hello" in
  Testkit.check_bool "verifies" true (Mac.verify ~key ~tag "hello");
  Testkit.check_bool "rejects other msg" false (Mac.verify ~key ~tag "hellp");
  Testkit.check_bool "rejects other key" false (Mac.verify ~key:(String.make 32 '\x43') ~tag "hello");
  (* Length is covered: a message with an embedded prefix must not verify
     under a tag for the prefix. *)
  Testkit.check_bool "length bound" false (Mac.verify ~key ~tag "hello world")

(* --- ARC4: classic reference vectors --- *)

let test_arc4_vectors () =
  (* Classic vector: key 0x0123456789abcdef, plaintext same 8 bytes. *)
  let key = Sfs_util.Hex.decode "0123456789abcdef" in
  let pt = Sfs_util.Hex.decode "0123456789abcdef" in
  Testkit.check_string "vector 1" "75b7878099e0c596"
    (Sfs_util.Hex.encode (Arc4.encrypt (Arc4.create key) pt));
  (* Keystream under the same key. *)
  Testkit.check_string "keystream" "7494c2e7104b0879"
    (Sfs_util.Hex.encode (Arc4.encrypt (Arc4.create key) (String.make 8 '\000')));
  (* Key 0xef012345, 10 zero bytes. *)
  Testkit.check_string "vector 3" "d6a141a7ec3c38dfbd61"
    (Sfs_util.Hex.encode (Arc4.encrypt (Arc4.create (Sfs_util.Hex.decode "ef012345")) (String.make 10 '\000')))

let test_arc4_spin () =
  (* A 20-byte key must not behave like its 16-byte prefix (the schedule
     spins once per 16 bytes). *)
  let k20 = String.init 20 (fun i -> Char.chr i) in
  let k16 = String.sub k20 0 16 in
  Testkit.check_bool "spin differs" false
    (Arc4.keystream (Arc4.create k20) 16 = Arc4.keystream (Arc4.create k16) 16);
  (* Stream is stateful: two successive reads differ. *)
  let t = Arc4.create k20 in
  Testkit.check_bool "advances" false (Arc4.keystream t 8 = Arc4.keystream t 8)

(* --- Blowfish: Eric Young's standard vectors --- *)

let bf_vector key pt ct =
  let t = Blowfish.create (Sfs_util.Hex.decode key) in
  Testkit.check_string ("enc " ^ key) ct
    (Sfs_util.Hex.encode (Blowfish.encrypt_block t (Sfs_util.Hex.decode pt)));
  Testkit.check_string ("dec " ^ key) pt
    (Sfs_util.Hex.encode (Blowfish.decrypt_block t (Sfs_util.Hex.decode ct)))

let test_blowfish_vectors () =
  bf_vector "0000000000000000" "0000000000000000" "4ef997456198dd78";
  bf_vector "ffffffffffffffff" "ffffffffffffffff" "51866fd5b85ecb8a";
  bf_vector "3000000000000000" "1000000000000001" "7d856f9a613063f2";
  bf_vector "1111111111111111" "1111111111111111" "2466dd878b963c9d";
  bf_vector "0123456789abcdef" "1111111111111111" "61f9c3802281b096";
  bf_vector "fedcba9876543210" "0123456789abcdef" "0aceab0fc6a0a28d";
  bf_vector "7ca110454a1a6e57" "01a1d6d039776742" "59c68245eb05282b"

let test_blowfish_cbc () =
  let t = Blowfish.create (String.make 20 '\x5f') in
  let iv = "initvect" in
  let pt = "0123456789abcdef0123456789abcdef" in
  let ct = Blowfish.encrypt_cbc t ~iv pt in
  Testkit.check_string "cbc roundtrip" pt (Blowfish.decrypt_cbc t ~iv ct);
  (* Equal plaintext blocks must encrypt differently under CBC. *)
  let pt2 = String.make 16 'A' in
  let ct2 = Blowfish.encrypt_cbc t ~iv pt2 in
  Testkit.check_bool "blocks differ" false (String.sub ct2 0 8 = String.sub ct2 8 8);
  Alcotest.check_raises "unaligned" (Invalid_argument "Blowfish.encrypt_cbc: not block-aligned")
    (fun () -> ignore (Blowfish.encrypt_cbc t ~iv "short"))

(* --- Eksblowfish --- *)

let test_eksblowfish () =
  let salt = String.make 16 '\x01' in
  let h1 = Eksblowfish.hash ~cost:2 ~salt "password" in
  Testkit.check_int "size" Eksblowfish.hash_size (String.length h1);
  Testkit.check_string "deterministic" (Sfs_util.Hex.encode h1)
    (Sfs_util.Hex.encode (Eksblowfish.hash ~cost:2 ~salt "password"));
  Testkit.check_bool "password matters" false (h1 = Eksblowfish.hash ~cost:2 ~salt "passwore");
  Testkit.check_bool "salt matters" false
    (h1 = Eksblowfish.hash ~cost:2 ~salt:(String.make 16 '\x02') "password");
  Testkit.check_bool "cost matters" false (h1 = Eksblowfish.hash ~cost:3 ~salt "password")

let test_eksblowfish_cost_curve () =
  (* Doubling the cost parameter should roughly double the work; verify
     monotonic growth in wall time. *)
  let salt = String.make 16 '\x07' in
  let time cost =
    let t0 = Sys.time () in
    ignore (Eksblowfish.hash ~cost ~salt "timing-probe");
    Sys.time () -. t0
  in
  let t4 = time 4 and t6 = time 6 in
  Testkit.check_bool "cost 6 slower than cost 4" true (t6 > t4)

(* --- PRNG --- *)

let test_prng () =
  let g1 = Prng.create [ "seed-a" ] in
  let g2 = Prng.create [ "seed-a" ] in
  let g3 = Prng.create [ "seed-b" ] in
  Testkit.check_string "deterministic" (Prng.random_bytes g1 40) (Prng.random_bytes g2 40);
  Testkit.check_bool "seed matters" false (Prng.random_bytes (Prng.create [ "seed-a" ]) 40 = Prng.random_bytes g3 40);
  let g = Prng.create [ "x" ] in
  Testkit.check_bool "stream advances" false (Prng.random_bytes g 20 = Prng.random_bytes g 20);
  (* add_entropy perturbs the stream *)
  let ga = Prng.create [ "y" ] and gb = Prng.create [ "y" ] in
  Prng.add_entropy ga "keystroke";
  Testkit.check_bool "entropy matters" false (Prng.random_bytes ga 20 = Prng.random_bytes gb 20);
  (* random_below respects its bound *)
  let bound = Nat.of_int 1000 in
  for _ = 1 to 100 do
    Testkit.check_bool "below bound" true (Nat.compare (Prng.random_below g ~bound) bound < 0)
  done;
  (* partial-block pool drains correctly: many odd-size reads of one
     stream equal one big read of an identically seeded stream *)
  let gc = Prng.create [ "z" ] and gd = Prng.create [ "z" ] in
  let parts = List.map (Prng.random_bytes gc) [ 3; 7; 1; 25; 4 ] in
  Testkit.check_string "pool consistency" (Prng.random_bytes gd 40) (String.concat "" parts)

(* --- Rabin-Williams --- *)

let test_rng = Prng.create [ "rabin-test-rng" ]
let test_key = lazy (Rabin.generate ~bits:512 test_rng)

let test_rabin_keygen () =
  let sk = Lazy.force test_key in
  let eight = Nat.of_int 8 in
  Alcotest.(check (option int)) "p = 3 mod 8" (Some 3) (Nat.to_int_opt (Nat.rem sk.Rabin.p eight));
  Alcotest.(check (option int)) "q = 7 mod 8" (Some 7) (Nat.to_int_opt (Nat.rem sk.Rabin.q eight));
  Testkit.check_bool "n = pq" true (Nat.equal sk.Rabin.pub.Rabin.n (Nat.mul sk.Rabin.p sk.Rabin.q))

let test_rabin_sign_verify () =
  let sk = Lazy.force test_key in
  let s = Rabin.sign sk "attack at dawn" in
  Testkit.check_bool "verifies" true (Rabin.verify sk.Rabin.pub "attack at dawn" s);
  Testkit.check_bool "message bound" false (Rabin.verify sk.Rabin.pub "attack at dusk" s);
  (* Signature serialization roundtrip. *)
  (match Rabin.signature_of_string (Rabin.signature_to_string s) with
  | Some s' -> Testkit.check_bool "serialized verifies" true (Rabin.verify sk.Rabin.pub "attack at dawn" s')
  | None -> Alcotest.fail "signature roundtrip");
  (* A tampered root must not verify. *)
  let bad = { s with Rabin.root = Nat.add s.Rabin.root Nat.one } in
  Testkit.check_bool "tampered root" false (Rabin.verify sk.Rabin.pub "attack at dawn" bad);
  (* Wrong key must not verify. *)
  let other = Rabin.generate ~bits:512 test_rng in
  Testkit.check_bool "wrong key" false (Rabin.verify other.Rabin.pub "attack at dawn" s)

let test_rabin_tweaks () =
  (* Across several messages both tweak bits should occur: each has
     probability 1/2 per message. *)
  let sk = Lazy.force test_key in
  let sigs = List.init 16 (fun i -> Rabin.sign sk (Printf.sprintf "msg %d" i)) in
  Testkit.check_bool "some negate" true (List.exists (fun s -> s.Rabin.negate) sigs);
  Testkit.check_bool "some not negate" true (List.exists (fun s -> not s.Rabin.negate) sigs);
  Testkit.check_bool "some double" true (List.exists (fun s -> s.Rabin.double) sigs);
  Testkit.check_bool "some not double" true (List.exists (fun s -> not s.Rabin.double) sigs);
  List.iteri
    (fun i s ->
      Testkit.check_bool (Printf.sprintf "verify %d" i) true
        (Rabin.verify sk.Rabin.pub (Printf.sprintf "msg %d" i) s))
    sigs

let test_rabin_encrypt () =
  let sk = Lazy.force test_key in
  let pk = sk.Rabin.pub in
  let msg = "self-cert path" in
  let c = Rabin.encrypt pk test_rng msg in
  Alcotest.(check (option string)) "decrypts" (Some msg) (Rabin.decrypt sk c);
  (* Probabilistic: same message encrypts differently. *)
  Testkit.check_bool "probabilistic" false (Nat.equal c (Rabin.encrypt pk test_rng msg));
  (* Tampered ciphertext decrypts to None, not garbage. *)
  Alcotest.(check (option string)) "tamper" None (Rabin.decrypt sk (Nat.add c Nat.one));
  Alcotest.(check (option string)) "empty message" (Some "") (Rabin.decrypt sk (Rabin.encrypt pk test_rng ""));
  let maxm = String.make (Rabin.max_plaintext pk) 'm' in
  Alcotest.(check (option string)) "max length" (Some maxm) (Rabin.decrypt sk (Rabin.encrypt pk test_rng maxm));
  Alcotest.check_raises "too long" (Invalid_argument "Rabin.encrypt: message too long") (fun () ->
      ignore (Rabin.encrypt pk test_rng (maxm ^ "x")))

let test_rabin_blob () =
  let sk = Lazy.force test_key in
  let pk = sk.Rabin.pub in
  let blob = String.init 5000 (fun i -> Char.chr (i land 0xff)) in
  let c = Rabin.encrypt_blob pk test_rng blob in
  Alcotest.(check (option string)) "roundtrip" (Some blob) (Rabin.decrypt_blob sk c);
  (* Flipping any byte of the body is detected by the MAC. *)
  let tampered = Bytes.of_string c in
  let last = Bytes.length tampered - 1 in
  Bytes.set tampered last (Char.chr (Char.code (Bytes.get tampered last) lxor 1));
  Alcotest.(check (option string)) "tampered" None (Rabin.decrypt_blob sk (Bytes.to_string tampered))

let test_rabin_pub_serialization () =
  let sk = Lazy.force test_key in
  let pk = sk.Rabin.pub in
  (match Rabin.pub_of_string (Rabin.pub_to_string pk) with
  | Some pk' -> Testkit.check_bool "roundtrip" true (Rabin.pub_equal pk pk')
  | None -> Alcotest.fail "pub roundtrip");
  Testkit.check_bool "garbage rejected" true (Rabin.pub_of_string "rabin-pk:junk" = None);
  Testkit.check_bool "truncated rejected" true
    (Rabin.pub_of_string (String.sub (Rabin.pub_to_string pk) 0 20) = None)

(* --- SRP --- *)

let srp_rng = Prng.create [ "srp-test-rng" ]
let srp_cost = 2

let run_srp ~password ~attempt =
  let grp = Srp.default_group in
  let v = Srp.make_verifier ~cost:srp_cost grp srp_rng ~user:"alice" ~password in
  let client = Srp.client_start grp srp_rng ~user:"alice" ~password:attempt in
  let server = Srp.server_start grp srp_rng v in
  match
    ( Srp.client_finish client ~salt:v.Srp.salt ~cost:v.Srp.cost ~b_pub:(Srp.server_pub server),
      Srp.server_finish server ~a_pub:(Srp.client_pub client) )
  with
  | Some cs, Some ss -> Some (cs, ss)
  | _ -> None

let test_srp_agreement () =
  match run_srp ~password:"hunter2" ~attempt:"hunter2" with
  | Some (cs, ss) ->
      Testkit.check_string "shared key" (Sfs_util.Hex.encode cs.Srp.key) (Sfs_util.Hex.encode ss.Srp.key);
      Testkit.check_bool "client proof accepted" true (Srp.check_client_proof ss ~proof:cs.Srp.proof)
  | None -> Alcotest.fail "srp handshake failed"

let test_srp_wrong_password () =
  match run_srp ~password:"hunter2" ~attempt:"hunter3" with
  | Some (cs, ss) ->
      Testkit.check_bool "keys differ" false (cs.Srp.key = ss.Srp.key);
      Testkit.check_bool "proof rejected" false (Srp.check_client_proof ss ~proof:cs.Srp.proof)
  | None -> Alcotest.fail "srp handshake failed"

let test_srp_server_proof () =
  match run_srp ~password:"pw" ~attempt:"pw" with
  | Some (cs, ss) ->
      let grp = Srp.default_group in
      let proof = Srp.server_proof grp ~a_pub:Nat.one ss in
      Testkit.check_bool "wrong a_pub rejected" false
        (Srp.check_server_proof grp ~a_pub:Nat.two cs ~proof)
  | None -> Alcotest.fail "srp handshake failed"

let test_srp_degenerate () =
  let grp = Srp.default_group in
  let v = Srp.make_verifier ~cost:srp_cost grp srp_rng ~user:"bob" ~password:"pw" in
  let server = Srp.server_start grp srp_rng v in
  (* A ≡ 0 (mod N) lets an attacker force S = 0; must be rejected. *)
  Testkit.check_bool "A=0 rejected" true (Srp.server_finish server ~a_pub:Nat.zero = None);
  Testkit.check_bool "A=N rejected" true (Srp.server_finish server ~a_pub:grp.Srp.n = None);
  let client = Srp.client_start grp srp_rng ~user:"bob" ~password:"pw" in
  Testkit.check_bool "B=0 rejected" true
    (Srp.client_finish client ~salt:v.Srp.salt ~cost:v.Srp.cost ~b_pub:Nat.zero = None)

let test_srp_verifier_no_password_equivalent () =
  (* The verifier is not password-equivalent: a client using v directly
     as its password must not reach the same key. *)
  let grp = Srp.default_group in
  let v = Srp.make_verifier ~cost:srp_cost grp srp_rng ~user:"carol" ~password:"secret" in
  let client = Srp.client_start grp srp_rng ~user:"carol" ~password:(Nat.to_hex v.Srp.v) in
  let server = Srp.server_start grp srp_rng v in
  match
    ( Srp.client_finish client ~salt:v.Srp.salt ~cost:v.Srp.cost ~b_pub:(Srp.server_pub server),
      Srp.server_finish server ~a_pub:(Srp.client_pub client) )
  with
  | Some cs, Some ss -> Testkit.check_bool "verifier is not a password" false (cs.Srp.key = ss.Srp.key)
  | _ -> ()

(* --- Properties --- *)

(* Byte-at-a-time ARC4 output via the documented reference step; the
   block entry points ([skip], [keystream_into], [encrypt_into],
   [xor_into]) must agree with it over any interleaving. *)
let arc4_ref_bytes (t : Arc4.t) (n : int) : string =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Arc4.next_byte t))
  done;
  Bytes.to_string b

let arc4_ref_xor (t : Arc4.t) (msg : string) : string =
  let b = Bytes.create (String.length msg) in
  for i = 0 to String.length msg - 1 do
    Bytes.set b i (Char.chr (Char.code msg.[i] lxor Arc4.next_byte t))
  done;
  Bytes.to_string b

let props =
  let open QCheck in
  let sk = Lazy.force test_key in
  [
    Test.make ~count:50 ~name:"arc4 encrypt/decrypt inverse"
      (pair (string_gen_of_size (Gen.int_range 1 40) Gen.char) (string_gen Gen.char))
      (fun (key, msg) ->
        assume (key <> "");
        Arc4.decrypt (Arc4.create key) (Arc4.encrypt (Arc4.create key) msg) = msg);
    Test.make ~count:20 ~name:"blowfish block inverse"
      (pair (string_gen_of_size (Gen.int_range 1 56) Gen.char) (string_gen_of_size (Gen.return 8) Gen.char))
      (fun (key, block) ->
        assume (key <> "");
        let t = Blowfish.create key in
        Blowfish.decrypt_block t (Blowfish.encrypt_block t block) = block);
    Test.make ~count:20 ~name:"rabin sign/verify" (string_gen Gen.char) (fun msg ->
        Rabin.verify sk.Rabin.pub msg (Rabin.sign sk msg));
    Test.make ~count:20 ~name:"rabin encrypt/decrypt"
      (string_gen_of_size (Gen.int_range 0 20) Gen.char)
      (fun msg -> Rabin.decrypt sk (Rabin.encrypt sk.Rabin.pub test_rng msg) = Some msg);
    Test.make ~count:20 ~name:"hmac distinguishes keys"
      (triple
         (string_gen_of_size (Gen.return 20) Gen.char)
         (string_gen_of_size (Gen.return 20) Gen.char)
         (string_gen Gen.char))
      (fun (k1, k2, msg) -> k1 = k2 || Mac.hmac ~key:k1 msg <> Mac.hmac ~key:k2 msg);
    Test.make ~count:50 ~name:"prng random_below bound" (int_range 1 1_000_000) (fun bound ->
        Prng.random_int test_rng bound < bound);
    (* The channel's fast path is exactly these block ops, so they must
       track the one-byte reference over any interleaving: the same
       stream position must yield the same bytes whether consumed by
       skip, keystream, in-place xor, or string-to-buffer xor. *)
    Test.make ~count:100 ~name:"arc4 block ops = byte-at-a-time reference"
      (pair
         (string_gen_of_size (Gen.int_range 1 40) Gen.char)
         (list_of_size (Gen.int_range 1 12) (pair (int_range 0 3) (int_range 0 120))))
      (fun (key, ops) ->
        assume (key <> "");
        let fast = Arc4.create key and slow = Arc4.create key in
        List.for_all
          (fun (op, n) ->
            let msg = String.init n (fun i -> Char.chr ((i * 7 + n) land 0xff)) in
            match op with
            | 0 -> Arc4.encrypt fast msg = arc4_ref_xor slow msg
            | 1 -> Arc4.keystream fast n = arc4_ref_bytes slow n
            | 2 ->
                Arc4.skip fast n;
                ignore (arc4_ref_bytes slow n);
                true
            | _ ->
                let dst = Bytes.make (n + 3) '\xee' in
                Arc4.xor_into fast ~src:msg ~src_off:0 ~dst ~dst_off:3 ~len:n;
                Bytes.sub_string dst 3 n = arc4_ref_xor slow msg)
          ops);
    (* Cached HMAC schedules are pure precomputation: same tags as the
       one-shot path for any key length (including > block size, which
       takes the digest-the-key branch) and any message mix. *)
    Test.make ~count:100 ~name:"cached hmac schedule = one-shot hmac"
      (pair
         (string_gen_of_size (Gen.int_range 0 100) Gen.char)
         (small_list (string_gen_of_size (Gen.int_range 0 200) Gen.char)))
      (fun (key, msgs) ->
        let s = Mac.schedule ~key in
        List.for_all
          (fun m ->
            Mac.hmac_sched s m = Mac.hmac ~key m
            && Mac.of_message_sched s m = Mac.of_message ~key m
            && Mac.verify_sched s ~tag:(Mac.of_message ~key m) m)
          msgs);
    (* mac_into over a frame already carrying its length word equals
       of_message over the bare plaintext — the channel depends on it. *)
    Test.make ~count:100 ~name:"mac_into on framed bytes = of_message"
      (pair
         (string_gen_of_size (Gen.int_range 0 64) Gen.char)
         (string_gen_of_size (Gen.int_range 0 300) Gen.char))
      (fun (key, msg) ->
        let n = String.length msg in
        let frame = Bytes.create (4 + n + Mac.mac_size) in
        Sfs_util.Bytesutil.put_be32 frame ~off:0 n;
        Bytes.blit_string msg 0 frame 4 n;
        let s = Mac.schedule ~key in
        Mac.mac_into s frame ~off:0 ~len:(4 + n) ~dst:frame ~dst_off:(4 + n);
        Bytes.sub_string frame (4 + n) Mac.mac_size = Mac.of_message ~key msg);
    (* feed_bytes/digest_into (the no-copy entry points) must agree with
       the string one-shot at every split, offset and destination. *)
    Test.make ~count:200 ~name:"sha1 feed_bytes/digest_into = digest"
      (pair (string_gen_of_size (Gen.int_range 0 300) Gen.char) (int_range 0 300))
      (fun (msg, split) ->
        let split = min split (String.length msg) in
        let c = Sha1.init () in
        let b = Bytes.of_string msg in
        Sha1.feed_bytes c b ~off:0 ~len:split;
        Sha1.feed_bytes c b ~off:split ~len:(String.length msg - split);
        let out = Bytes.make (Sha1.digest_size + 3) '\xaa' in
        Sha1.digest_into c out ~off:3;
        Bytes.sub_string out 3 Sha1.digest_size = Sha1.digest msg);
  ]

let test_srp_group_generation () =
  (* Fresh (tiny) safe-prime group: p = 2q+1, p = 3 (mod 8), g = 2. *)
  let g = Srp.generate_group srp_rng ~bits:48 in
  let p = g.Srp.n in
  Testkit.check_int "width" 48 (Nat.num_bits p);
  Alcotest.(check (option int)) "p mod 8" (Some 3) (Nat.to_int_opt (Nat.rem p (Nat.of_int 8)));
  let q = Nat.shift_right (Nat.sub p Nat.one) 1 in
  let rand_bits b = Prng.random_nat srp_rng ~bits:b in
  Testkit.check_bool "p prime" true (Sfs_bignum.Prime.is_probably_prime ~rand_bits p);
  Testkit.check_bool "q prime" true (Sfs_bignum.Prime.is_probably_prime ~rand_bits q);
  (* And the default group checks out too. *)
  let d = Srp.default_group.Srp.n in
  Testkit.check_int "default width" 512 (Nat.num_bits d);
  Testkit.check_bool "default prime" true (Sfs_bignum.Prime.is_probably_prime ~rand_bits d)

let suite =
  ( "crypto",
    [
      Alcotest.test_case "sha1 vectors" `Quick test_sha1_vectors;
      Alcotest.test_case "sha1 incremental" `Quick test_sha1_incremental;
      Alcotest.test_case "sha1 duplication" `Quick test_sha1_paper_duplication;
      Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
      Alcotest.test_case "traffic mac" `Quick test_mac_message;
      Alcotest.test_case "arc4 vectors" `Quick test_arc4_vectors;
      Alcotest.test_case "arc4 20-byte spin" `Quick test_arc4_spin;
      Alcotest.test_case "blowfish vectors" `Quick test_blowfish_vectors;
      Alcotest.test_case "blowfish cbc" `Quick test_blowfish_cbc;
      Alcotest.test_case "eksblowfish" `Quick test_eksblowfish;
      Alcotest.test_case "eksblowfish cost curve" `Slow test_eksblowfish_cost_curve;
      Alcotest.test_case "prng" `Quick test_prng;
      Alcotest.test_case "rabin keygen" `Quick test_rabin_keygen;
      Alcotest.test_case "rabin sign/verify" `Quick test_rabin_sign_verify;
      Alcotest.test_case "rabin tweak bits" `Quick test_rabin_tweaks;
      Alcotest.test_case "rabin encryption" `Quick test_rabin_encrypt;
      Alcotest.test_case "rabin hybrid blob" `Quick test_rabin_blob;
      Alcotest.test_case "rabin pub serialization" `Quick test_rabin_pub_serialization;
      Alcotest.test_case "srp agreement" `Quick test_srp_agreement;
      Alcotest.test_case "srp wrong password" `Quick test_srp_wrong_password;
      Alcotest.test_case "srp server proof" `Quick test_srp_server_proof;
      Alcotest.test_case "srp degenerate values" `Quick test_srp_degenerate;
      Alcotest.test_case "srp verifier leak" `Quick test_srp_verifier_no_password_equivalent;
      Alcotest.test_case "srp group generation" `Slow test_srp_group_generation;
    ]
    @ Testkit.to_alcotest props )
