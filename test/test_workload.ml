(* Workload/benchmark harness tests: the stacks build and behave, and
   the headline shapes of the paper's evaluation hold as invariants. *)

open Sfs_workload
module Simclock = Sfs_net.Simclock

let test_stacks_construct () =
  List.iter
    (fun s ->
      let w = Stacks.make s in
      (* Every stack exposes a usable workdir. *)
      Driver.write_file w (w.Stacks.workdir ^ "/probe") "ok";
      Testkit.check_string (Stacks.stack_name s) "ok" (Driver.read_file w (w.Stacks.workdir ^ "/probe")))
    [ Stacks.Local; Stacks.Nfs_udp; Stacks.Nfs_tcp; Stacks.Sfs; Stacks.Sfs_noenc; Stacks.Sfs_nocache ]

let test_driver_helpers () =
  let w = Stacks.make Stacks.Local in
  let d = w.Stacks.workdir ^ "/helpers" in
  Driver.mkdir w d;
  Driver.write_file w (d ^ "/f") (Driver.content ~seed:3 100);
  Testkit.check_int "content length" 100 (String.length (Driver.read_file w (d ^ "/f")));
  Testkit.check_string "content deterministic" (Driver.content ~seed:3 100) (Driver.content ~seed:3 100);
  Testkit.check_bool "content varies by seed" false (Driver.content ~seed:3 100 = Driver.content ~seed:4 100);
  let names = Driver.readdir w d in
  Alcotest.(check (list string)) "readdir" [ "f" ] names;
  Driver.stat_probe w (d ^ "/missing");
  Driver.unlink w (d ^ "/f");
  Driver.stat_probe w (d ^ "/f")

let test_fig5_latency_shape () =
  (* The headline shape of Figure 5: SFS latency is several times NFS,
     dominated by the user-level implementation, not encryption. *)
  let lat s = Microbench.latency_us (Stacks.make s) in
  let udp = lat Stacks.Nfs_udp in
  let tcp = lat Stacks.Nfs_tcp in
  let sfs = lat Stacks.Sfs in
  let noenc = lat Stacks.Sfs_noenc in
  Testkit.check_bool "udp ~200us" true (udp > 150.0 && udp < 300.0);
  Testkit.check_bool "tcp slower than udp" true (tcp > udp);
  Testkit.check_bool "sfs 3-5x nfs" true (sfs > 3.0 *. udp && sfs < 5.0 *. udp);
  Testkit.check_bool "encryption is a small share" true (sfs -. noenc < 0.15 *. sfs);
  Testkit.check_bool "noenc still far above tcp" true (noenc > 2.0 *. tcp)

let test_fig5_throughput_shape () =
  let thr s =
    let params = { Sfs_nfs.Diskmodel.default_params with Sfs_nfs.Diskmodel.cache_blocks = 16384 } in
    Microbench.throughput_mb_s (Stacks.make ~server_disk_params:params s)
  in
  let udp = thr Stacks.Nfs_udp in
  let tcp = thr Stacks.Nfs_tcp in
  let sfs = thr Stacks.Sfs in
  let noenc = thr Stacks.Sfs_noenc in
  (* Paper ordering was UDP 9.3 > TCP 7.6 > noenc 7.1 > SFS 4.1; with
     keystream precomputation overlapping the idle wire (DESIGN.md §14)
     encryption no longer costs streaming throughput, so SFS rides at
     noenc's heels instead of 42% behind it. *)
  Testkit.check_bool "udp fastest" true (udp > tcp);
  Testkit.check_bool "tcp above noenc" true (tcp > noenc);
  Testkit.check_bool "noenc at or above sfs" true (noenc >= sfs);
  Testkit.check_bool "udp ~9MB/s" true (udp > 7.0 && udp < 11.0);
  Testkit.check_bool "encryption within 10% of noenc" true (sfs > 0.9 *. noenc)

let test_mab_shape () =
  let total s = Mab.total (Mab.run (Stacks.make s)) in
  let local = total Stacks.Local in
  let udp = total Stacks.Nfs_udp in
  let sfs = total Stacks.Sfs in
  let nocache = total Stacks.Sfs_nocache in
  Testkit.check_bool "local fastest" true (local < udp);
  Testkit.check_bool "sfs slower than nfs" true (sfs > udp);
  (* "SFS is only 11% slower than NFS 3 over UDP" — allow 25%. *)
  Testkit.check_bool "sfs within 25% of nfs/udp" true (sfs < 1.25 *. udp);
  (* "Without enhanced caching, MAB takes ... 0.7 seconds slower." *)
  Testkit.check_bool "enhanced caching helps" true (nocache > sfs)

let test_lfs_small_shape () =
  let run s = Sprite_lfs.run_small (Stacks.make s) in
  let udp = run Stacks.Nfs_udp in
  let sfs = run Stacks.Sfs in
  (* Create: "SFS performs about the same as NFS 3 over UDP". *)
  Testkit.check_bool "create within 20%" true
    (sfs.Sprite_lfs.create_s < 1.2 *. udp.Sprite_lfs.create_s);
  (* Read: "SFS is 3 times slower than NFS 3 over UDP" (2-5x band). *)
  let ratio = sfs.Sprite_lfs.read_s /. udp.Sprite_lfs.read_s in
  Testkit.check_bool "read 2-5x slower" true (ratio > 2.0 && ratio < 5.0);
  (* Unlink: "all file systems have roughly the same performance". *)
  Testkit.check_bool "unlink within 10%" true
    (sfs.Sprite_lfs.unlink_s < 1.1 *. udp.Sprite_lfs.unlink_s)

let test_compile_crossover () =
  (* Figure 7's coup: SFS beats NFS 3 over TCP while losing to UDP. *)
  let time s = Compile.run (Stacks.make s) in
  let local = time Stacks.Local in
  let udp = time Stacks.Nfs_udp in
  let tcp = time Stacks.Nfs_tcp in
  let sfs = time Stacks.Sfs in
  Testkit.check_bool "local < udp" true (local < udp);
  Testkit.check_bool "udp < sfs" true (udp < sfs);
  Testkit.check_bool "sfs < tcp (the crossover)" true (sfs < tcp)

let test_flush_caches () =
  let w = Stacks.make Stacks.Sfs in
  Driver.write_file w (w.Stacks.workdir ^ "/cached") "data";
  ignore (Driver.read_file w (w.Stacks.workdir ^ "/cached"));
  Stacks.flush_caches w;
  (* Still correct after the flush; just slower. *)
  Testkit.check_string "reread after flush" "data" (Driver.read_file w (w.Stacks.workdir ^ "/cached"))

(* --- Fleet: the discrete-event mass-client engine (DESIGN.md §15) --- *)

let check_reconcile r =
  List.iter (fun (name, ok) -> Testkit.check_bool ("reconcile: " ^ name) true ok) (Fleet.reconcile r)

let test_fleet_smoke () =
  let r = Fleet.run Fleet.default in
  check_reconcile r;
  Testkit.check_int "all mounted" Fleet.default.Fleet.clients r.Fleet.r_mount_ok;
  Testkit.check_int "all ops completed"
    (Fleet.default.Fleet.clients * Fleet.default.Fleet.ops_per_client)
    r.Fleet.r_completed;
  Testkit.check_int "no failures" 0 r.Fleet.r_failed;
  Testkit.check_bool "throughput positive" true (Fleet.throughput_ops_s r > 0.0);
  (* The hot file's writers must have triggered lease fan-out. *)
  Testkit.check_bool "invalidations fanned out" true
    (Sfs_obs.Obs.counter r.Fleet.r_obs "lease.invalidations" > 0)

let test_fleet_admission () =
  (* One server capped at 2 concurrent connections, 6 clients arriving
     at once: mounts must be refused, back off, re-dial, and all
     eventually complete. *)
  let cfg =
    { Fleet.default with Fleet.clients = 6; servers = 1; admit_per_server = Some 2; stagger_us = 0.0 }
  in
  let r = Fleet.run cfg in
  check_reconcile r;
  Testkit.check_int "all mounted despite the cap" 6 r.Fleet.r_mount_ok;
  Testkit.check_bool "refusals happened" true
    (Sfs_obs.Obs.counter r.Fleet.r_obs "net.admission.refused" > 0);
  Testkit.check_bool "re-dials counted" true (r.Fleet.r_mount_retries > 0)

let test_fleet_determinism () =
  (* Two same-config runs must produce byte-identical ledgers — the
     property the chaos-soak job checks at scale. *)
  let cfg = { Fleet.default with Fleet.clients = 24; user_pool = 8 } in
  let l1 = Fleet.ledger (Fleet.run cfg) in
  let l2 = Fleet.ledger (Fleet.run cfg) in
  Testkit.check_bool "byte-identical ledgers" true (String.equal l1 l2);
  Testkit.check_bool "ledger non-trivial" true (String.length l1 > 200)

let test_fleet_10k () =
  (* The acceptance smoke: 10,000 concurrent clients over a 4-server
     farm and a 4-shard authserv ring; every lease/DRC counter must
     reconcile against live state afterwards. *)
  let cfg =
    {
      Fleet.default with
      Fleet.clients = 10_000;
      servers = 4;
      auth_shards = 4;
      user_pool = 16;
      admit_per_server = Some 4000;
      hot_write_every = 500;
    }
  in
  let r = Fleet.run cfg in
  check_reconcile r;
  Testkit.check_int "all 10k mounted" 10_000 r.Fleet.r_mount_ok;
  Testkit.check_int "all ops completed" 40_000 r.Fleet.r_completed;
  Testkit.check_int "no failures" 0 r.Fleet.r_failed;
  let p99 = Sfs_obs.Sketch.quantile r.Fleet.r_op_lat 0.99 in
  let p50 = Sfs_obs.Sketch.quantile r.Fleet.r_op_lat 0.50 in
  Testkit.check_bool "latency quantiles ordered" true (0 < p50 && p50 <= p99)

let test_fleet_zipf () =
  (* The read-write arm of the CDN figure: Zipf reads over the
     two-level tree, ramp arrivals. *)
  let cfg =
    {
      Fleet.default with
      Fleet.clients = 32;
      servers = 1;
      ops_per_client = 6;
      workload = Fleet.Zipf { dirs = 4; files_per_dir = 8; file_bytes = 1024; theta = 1.0 };
      arrival = Fleet.Ramp 20_000.0;
    }
  in
  let r = Fleet.run cfg in
  check_reconcile r;
  Testkit.check_int "all mounted" 32 r.Fleet.r_mount_ok;
  Testkit.check_int "all reads completed" (32 * 6) r.Fleet.r_completed;
  Testkit.check_int "no failures" 0 r.Fleet.r_failed

(* --- Flashcrowd: the read-only CDN tier --- *)

let check_fc_reconcile r =
  List.iter
    (fun (name, ok) -> Testkit.check_bool ("fc reconcile: " ^ name) true ok)
    (Flashcrowd.reconcile r)

let test_flashcrowd_smoke () =
  (* Enough reads per client for each verification cache to warm up. *)
  let cfg = { Flashcrowd.default with Flashcrowd.reads_per_client = 12 } in
  let r = Flashcrowd.run cfg in
  check_fc_reconcile r;
  Testkit.check_int "all clients finished" cfg.Flashcrowd.clients r.Flashcrowd.r_clients_ok;
  Testkit.check_int "no failed reads" 0 r.Flashcrowd.r_reads_failed;
  Testkit.check_bool "throughput positive" true (Flashcrowd.throughput_reads_s r > 0.0);
  (* The verification cache must be doing its job: far more objects
     reach applications than are verified. *)
  let obs = r.Flashcrowd.r_obs in
  Testkit.check_bool "cache hits dominate" true
    (Sfs_obs.Obs.counter obs "ro.verify.hit" > Sfs_obs.Obs.counter obs "ro.verify.ok")

let test_flashcrowd_determinism () =
  let cfg = { Flashcrowd.default with Flashcrowd.clients = 48; replicas = 3 } in
  let l1 = Flashcrowd.ledger (Flashcrowd.run cfg) in
  let l2 = Flashcrowd.ledger (Flashcrowd.run cfg) in
  Testkit.check_bool "byte-identical ledgers" true (String.equal l1 l2);
  Testkit.check_bool "ledger non-trivial" true (String.length l1 > 200)

let test_flashcrowd_admission_failover () =
  (* Tight admission on two mirrors: clients must be refused, back off,
     and fail over to the least-loaded mirror — and still all finish. *)
  let cfg =
    {
      Flashcrowd.default with
      Flashcrowd.clients = 24;
      replicas = 2;
      admit_per_mirror = Some 4;
      ramp_us = 1_000.0;
    }
  in
  let r = Flashcrowd.run cfg in
  check_fc_reconcile r;
  Testkit.check_int "all clients finished despite the caps" 24 r.Flashcrowd.r_clients_ok;
  Testkit.check_bool "refusals happened" true
    (Sfs_obs.Obs.counter r.Flashcrowd.r_obs "net.admission.refused" > 0);
  Testkit.check_bool "failovers counted" true (r.Flashcrowd.r_failovers > 0)

let test_flashcrowd_republish () =
  (* A mid-crowd incremental publish: the delta fans out, stale objects
     are evicted, clients refresh onto the new root, and nothing
     unverified ever surfaces. *)
  let cfg =
    {
      Flashcrowd.default with
      Flashcrowd.clients = 40;
      reads_per_client = 8;
      republish_at_us = Some 60_000.0;
    }
  in
  let r = Flashcrowd.run cfg in
  check_fc_reconcile r;
  Testkit.check_int "republish happened" 1 r.Flashcrowd.r_republishes;
  Testkit.check_int "all clients finished" 40 r.Flashcrowd.r_clients_ok;
  Testkit.check_int "nothing unverified" 0 r.Flashcrowd.r_bad_content;
  Testkit.check_bool "incremental publish reused objects" true
    (Sfs_obs.Obs.counter r.Flashcrowd.r_obs "ro.publish.reused" > 0)

let test_flashcrowd_20k () =
  (* Past the read-write fleet's 10^4: slim per-connection state lets
     the crowd double without the engine breaking a sweat.  Every
     accounting invariant must still reconcile exactly. *)
  let cfg =
    {
      Flashcrowd.default with
      Flashcrowd.clients = 20_000;
      replicas = 8;
      dirs = 8;
      files_per_dir = 32;
      file_bytes = 1024;
      reads_per_client = 2;
      vcache_objs = 64;
      admit_per_mirror = Some 4000;
      ramp_us = 2_000_000.0;
    }
  in
  let r = Flashcrowd.run cfg in
  check_fc_reconcile r;
  Testkit.check_int "all 20k finished" 20_000 r.Flashcrowd.r_clients_ok;
  Testkit.check_int "all reads completed" 40_000 r.Flashcrowd.r_reads_ok;
  let p50 = Sfs_obs.Sketch.quantile r.Flashcrowd.r_read_lat 0.50 in
  let p99 = Sfs_obs.Sketch.quantile r.Flashcrowd.r_read_lat 0.99 in
  Testkit.check_bool "latency quantiles ordered" true (0 < p50 && p50 <= p99)

let suite =
  ( "workload",
    [
      Alcotest.test_case "stacks construct" `Quick test_stacks_construct;
      Alcotest.test_case "driver helpers" `Quick test_driver_helpers;
      Alcotest.test_case "fig5 latency shape" `Quick test_fig5_latency_shape;
      Alcotest.test_case "fig5 throughput shape" `Slow test_fig5_throughput_shape;
      Alcotest.test_case "fig6 MAB shape" `Slow test_mab_shape;
      Alcotest.test_case "fig8 LFS small shape" `Slow test_lfs_small_shape;
      Alcotest.test_case "fig7 compile crossover" `Slow test_compile_crossover;
      Alcotest.test_case "flush caches" `Quick test_flush_caches;
      Alcotest.test_case "fleet smoke" `Quick test_fleet_smoke;
      Alcotest.test_case "fleet admission" `Quick test_fleet_admission;
      Alcotest.test_case "fleet determinism" `Quick test_fleet_determinism;
      Alcotest.test_case "fleet 10k clients" `Slow test_fleet_10k;
      Alcotest.test_case "fleet zipf reads" `Quick test_fleet_zipf;
      Alcotest.test_case "flashcrowd smoke" `Quick test_flashcrowd_smoke;
      Alcotest.test_case "flashcrowd determinism" `Quick test_flashcrowd_determinism;
      Alcotest.test_case "flashcrowd admission failover" `Quick test_flashcrowd_admission_failover;
      Alcotest.test_case "flashcrowd republish" `Quick test_flashcrowd_republish;
      Alcotest.test_case "flashcrowd 20k clients" `Slow test_flashcrowd_20k;
    ] )
