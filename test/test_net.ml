module Simclock = Sfs_net.Simclock
module Simnet = Sfs_net.Simnet
module Costmodel = Sfs_net.Costmodel

let echo_service : Simnet.service = fun ~peer:_ -> fun msg -> "echo:" ^ msg

let make_net () =
  let clock = Simclock.create () in
  let net = Simnet.create clock in
  let h = Simnet.add_host net "server.example.com" in
  Simnet.listen net h ~port:7 echo_service;
  (clock, net, h)

let test_basic_exchange () =
  let _, net, _ = make_net () in
  let c = Simnet.connect net ~from_host:"client" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Testkit.check_string "echo" "echo:hi" (Simnet.call c "hi");
  let rpcs, sent, received = Simnet.stats c in
  Testkit.check_int "rpcs" 1 rpcs;
  Testkit.check_int "sent" 2 sent;
  Testkit.check_int "received" 7 received

let test_no_route () =
  let _, net, _ = make_net () in
  Alcotest.check_raises "unknown host" (Simnet.No_route "nowhere") (fun () ->
      ignore (Simnet.connect net ~from_host:"c" ~addr:"nowhere" ~port:7 ~proto:Costmodel.Tcp));
  Alcotest.check_raises "unknown port" (Simnet.No_route "server.example.com:99") (fun () ->
      ignore (Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:99 ~proto:Costmodel.Tcp))

let test_aliases () =
  let _, net, h = make_net () in
  Simnet.add_alias net h "10.0.0.1";
  let c = Simnet.connect net ~from_host:"c" ~addr:"10.0.0.1" ~port:7 ~proto:Costmodel.Udp in
  Testkit.check_string "alias works" "echo:x" (Simnet.call c "x");
  Simnet.remove_host net "server.example.com";
  Alcotest.check_raises "aliases removed too" (Simnet.No_route "10.0.0.1") (fun () ->
      ignore (Simnet.connect net ~from_host:"c" ~addr:"10.0.0.1" ~port:7 ~proto:Costmodel.Udp))

let test_timing () =
  let clock, net, _ = make_net () in
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Udp in
  let _, us = Simclock.time clock (fun () -> ignore (Simnet.call c "")) in
  (* Null RPC over UDP: the paper's 200 us plus the tiny reply transfer. *)
  Testkit.check_bool "null RPC ~200us" true (us >= 200.0 && us < 210.0);
  (* 8 KB each way costs wire transfer time: ~200 + 2 * 8190/12 = 1565 us. *)
  let big = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Udp in
  let _, us2 = Simclock.time clock (fun () -> ignore (Simnet.call big (String.make 8187 'x'))) in
  Testkit.check_bool "8K transfer time" true (us2 > 1500.0 && us2 < 1650.0);
  (* TCP costs more per RPC than UDP. *)
  let tcp = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  let _, us3 = Simclock.time clock (fun () -> ignore (Simnet.call tcp "")) in
  Testkit.check_bool "tcp slower" true (us3 > us)

let test_tap_tamper () =
  let _, net, _ = make_net () in
  let tap = Simnet.passive_tap () in
  tap.Simnet.on_message <-
    (fun dir msg ->
      if dir = Simnet.To_server && msg = "attack" then Simnet.Replace "tampered" else Simnet.Pass);
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Simnet.set_tap c (Some tap);
  Testkit.check_string "tampered" "echo:tampered" (Simnet.call c "attack");
  Testkit.check_string "passed" "echo:ok" (Simnet.call c "ok");
  (* The tap observed all four messages. *)
  Testkit.check_int "observed" 4 (List.length tap.Simnet.observed)

let test_tap_drop () =
  let _, net, _ = make_net () in
  let tap = Simnet.passive_tap () in
  tap.Simnet.on_message <- (fun _ _ -> Simnet.Drop);
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Simnet.set_tap c (Some tap);
  Alcotest.check_raises "dropped" Simnet.Timeout (fun () -> ignore (Simnet.call c "x"))

let test_replay_via_inject () =
  (* A stateful service: the adversary can replay a recorded message
     through [inject]; higher layers must defend themselves. *)
  let clock = Simclock.create () in
  let net = Simnet.create clock in
  let h = Simnet.add_host net "s" in
  let counter = ref 0 in
  Simnet.listen net h ~port:1 (fun ~peer:_ ->
      fun _msg ->
        incr counter;
        string_of_int !counter);
  let c = Simnet.connect net ~from_host:"c" ~addr:"s" ~port:1 ~proto:Costmodel.Tcp in
  let tap = Simnet.passive_tap () in
  Simnet.set_tap c (Some tap);
  ignore (Simnet.call c "deposit");
  let recorded =
    match List.rev tap.Simnet.observed with
    | (Simnet.To_server, m) :: _ -> m
    | _ -> Alcotest.fail "no capture"
  in
  ignore (Simnet.inject c recorded);
  Testkit.check_int "replay reached the server" 2 !counter

let test_closed_conn () =
  let _, net, _ = make_net () in
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Simnet.close c;
  Alcotest.check_raises "closed" Simnet.Timeout (fun () -> ignore (Simnet.call c "x"))

let test_per_connection_state () =
  (* Each connection gets its own handler closure. *)
  let clock = Simclock.create () in
  let net = Simnet.create clock in
  let h = Simnet.add_host net "s" in
  Simnet.listen net h ~port:1 (fun ~peer ->
      let n = ref 0 in
      fun _ ->
        incr n;
        Printf.sprintf "%s:%d" peer !n);
  let c1 = Simnet.connect net ~from_host:"alice" ~addr:"s" ~port:1 ~proto:Costmodel.Tcp in
  let c2 = Simnet.connect net ~from_host:"bob" ~addr:"s" ~port:1 ~proto:Costmodel.Tcp in
  Testkit.check_string "c1 first" "alice:1" (Simnet.call c1 "");
  Testkit.check_string "c2 has own state" "bob:1" (Simnet.call c2 "");
  Testkit.check_string "c1 second" "alice:2" (Simnet.call c1 "")

let test_clock () =
  let clock = Simclock.create () in
  Alcotest.(check (float 0.001)) "zero" 0.0 (Simclock.now_us clock);
  Simclock.advance clock 1500.0;
  Alcotest.(check (float 0.001)) "advanced" 1500.0 (Simclock.now_us clock);
  Alcotest.(check (float 0.0001)) "seconds" 0.0015 (Simclock.now_s clock);
  Testkit.check_int "whole seconds" 0 (Simclock.seconds clock);
  Alcotest.check_raises "negative" (Invalid_argument "Simclock.advance: negative") (fun () ->
      Simclock.advance clock (-1.0))

(* Fault-injector transparency: with the *empty* fault plan armed, the
   network is indistinguishable from one with no injector at all —
   every message is delivered, exactly once, and per (src, dst) pair
   the arrival order at the server equals the send order. *)
let ordering_prop =
  let module Fault = Sfs_fault.Fault in
  QCheck.Test.make ~count:100 ~name:"empty fault plan preserves per-pair delivery order"
    QCheck.(
      pair small_int
        (list_of_size (Gen.int_range 0 40) (pair (int_bound 2) (string_of_size (Gen.int_range 0 64)))))
    (fun (seed_n, sends) ->
      let run (armed : bool) : (string * string) list =
        let clock = Simclock.create () in
        let net = Simnet.create clock in
        let h = Simnet.add_host net "srv" in
        let trace = ref [] in
        Simnet.listen net h ~port:9 (fun ~peer msg ->
            trace := (peer, msg) :: !trace;
            "ok");
        if armed then
          Simnet.set_injector net
            (Some
               (Fault.injector
                  ~now_us:(fun () -> Simclock.now_us clock)
                  (Fault.none ~seed:(string_of_int seed_n))));
        let conns =
          Array.init 3 (fun i ->
              Simnet.connect net ~from_host:(Printf.sprintf "c%d" i) ~addr:"srv" ~port:9
                ~proto:Costmodel.Udp)
        in
        List.iter (fun (ci, msg) -> ignore (Simnet.call conns.(ci) msg)) sends;
        List.rev !trace
      in
      let armed = run true in
      armed = run false
      && List.for_all
           (fun ci ->
             let src = Printf.sprintf "c%d" ci in
             List.filter_map (fun (p, m) -> if p = src then Some m else None) armed
             = List.filter_map (fun (c, m) -> if c = ci then Some m else None) sends)
           [ 0; 1; 2 ])

let suite =
  ( "net",
    [
      Alcotest.test_case "basic exchange" `Quick test_basic_exchange;
      Alcotest.test_case "no route" `Quick test_no_route;
      Alcotest.test_case "aliases" `Quick test_aliases;
      Alcotest.test_case "cost model timing" `Quick test_timing;
      Alcotest.test_case "adversary tamper" `Quick test_tap_tamper;
      Alcotest.test_case "adversary drop" `Quick test_tap_drop;
      Alcotest.test_case "adversary replay" `Quick test_replay_via_inject;
      Alcotest.test_case "closed connection" `Quick test_closed_conn;
      Alcotest.test_case "per-connection state" `Quick test_per_connection_state;
      Alcotest.test_case "clock" `Quick test_clock;
    ]
    @ Testkit.to_alcotest [ ordering_prop ] )
