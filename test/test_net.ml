module Simclock = Sfs_net.Simclock
module Simnet = Sfs_net.Simnet
module Costmodel = Sfs_net.Costmodel

let echo_service : Simnet.service = fun ~peer:_ -> fun msg -> "echo:" ^ msg

let make_net () =
  let clock = Simclock.create () in
  let net = Simnet.create clock in
  let h = Simnet.add_host net "server.example.com" in
  Simnet.listen net h ~port:7 echo_service;
  (clock, net, h)

let test_basic_exchange () =
  let _, net, _ = make_net () in
  let c = Simnet.connect net ~from_host:"client" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Testkit.check_string "echo" "echo:hi" (Simnet.call c "hi");
  let rpcs, sent, received = Simnet.stats c in
  Testkit.check_int "rpcs" 1 rpcs;
  Testkit.check_int "sent" 2 sent;
  Testkit.check_int "received" 7 received

let test_no_route () =
  let _, net, _ = make_net () in
  Alcotest.check_raises "unknown host" (Simnet.No_route "nowhere") (fun () ->
      ignore (Simnet.connect net ~from_host:"c" ~addr:"nowhere" ~port:7 ~proto:Costmodel.Tcp));
  Alcotest.check_raises "unknown port" (Simnet.No_route "server.example.com:99") (fun () ->
      ignore (Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:99 ~proto:Costmodel.Tcp))

let test_aliases () =
  let _, net, h = make_net () in
  Simnet.add_alias net h "10.0.0.1";
  let c = Simnet.connect net ~from_host:"c" ~addr:"10.0.0.1" ~port:7 ~proto:Costmodel.Udp in
  Testkit.check_string "alias works" "echo:x" (Simnet.call c "x");
  Simnet.remove_host net "server.example.com";
  Alcotest.check_raises "aliases removed too" (Simnet.No_route "10.0.0.1") (fun () ->
      ignore (Simnet.connect net ~from_host:"c" ~addr:"10.0.0.1" ~port:7 ~proto:Costmodel.Udp))

let test_timing () =
  let clock, net, _ = make_net () in
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Udp in
  let _, us = Simclock.time clock (fun () -> ignore (Simnet.call c "")) in
  (* Null RPC over UDP: the paper's 200 us plus the tiny reply transfer. *)
  Testkit.check_bool "null RPC ~200us" true (us >= 200.0 && us < 210.0);
  (* 8 KB each way costs wire transfer time: ~200 + 2 * 8190/12 = 1565 us. *)
  let big = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Udp in
  let _, us2 = Simclock.time clock (fun () -> ignore (Simnet.call big (String.make 8187 'x'))) in
  Testkit.check_bool "8K transfer time" true (us2 > 1500.0 && us2 < 1650.0);
  (* TCP costs more per RPC than UDP. *)
  let tcp = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  let _, us3 = Simclock.time clock (fun () -> ignore (Simnet.call tcp "")) in
  Testkit.check_bool "tcp slower" true (us3 > us)

let test_tap_tamper () =
  let _, net, _ = make_net () in
  let tap = Simnet.passive_tap () in
  tap.Simnet.on_message <-
    (fun dir msg ->
      if dir = Simnet.To_server && msg = "attack" then Simnet.Replace "tampered" else Simnet.Pass);
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Simnet.set_tap c (Some tap);
  Testkit.check_string "tampered" "echo:tampered" (Simnet.call c "attack");
  Testkit.check_string "passed" "echo:ok" (Simnet.call c "ok");
  (* The tap observed all four messages. *)
  Testkit.check_int "observed" 4 (List.length tap.Simnet.observed)

let test_tap_drop () =
  let _, net, _ = make_net () in
  let tap = Simnet.passive_tap () in
  tap.Simnet.on_message <- (fun _ _ -> Simnet.Drop);
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Simnet.set_tap c (Some tap);
  Alcotest.check_raises "dropped" Simnet.Timeout (fun () -> ignore (Simnet.call c "x"))

let test_replay_via_inject () =
  (* A stateful service: the adversary can replay a recorded message
     through [inject]; higher layers must defend themselves. *)
  let clock = Simclock.create () in
  let net = Simnet.create clock in
  let h = Simnet.add_host net "s" in
  let counter = ref 0 in
  Simnet.listen net h ~port:1 (fun ~peer:_ ->
      fun _msg ->
        incr counter;
        string_of_int !counter);
  let c = Simnet.connect net ~from_host:"c" ~addr:"s" ~port:1 ~proto:Costmodel.Tcp in
  let tap = Simnet.passive_tap () in
  Simnet.set_tap c (Some tap);
  ignore (Simnet.call c "deposit");
  let recorded =
    match List.rev tap.Simnet.observed with
    | (Simnet.To_server, m) :: _ -> m
    | _ -> Alcotest.fail "no capture"
  in
  ignore (Simnet.inject c recorded);
  Testkit.check_int "replay reached the server" 2 !counter

let test_closed_conn () =
  let _, net, _ = make_net () in
  let c = Simnet.connect net ~from_host:"c" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Simnet.close c;
  Alcotest.check_raises "closed" Simnet.Timeout (fun () -> ignore (Simnet.call c "x"))

let test_per_connection_state () =
  (* Each connection gets its own handler closure. *)
  let clock = Simclock.create () in
  let net = Simnet.create clock in
  let h = Simnet.add_host net "s" in
  Simnet.listen net h ~port:1 (fun ~peer ->
      let n = ref 0 in
      fun _ ->
        incr n;
        Printf.sprintf "%s:%d" peer !n);
  let c1 = Simnet.connect net ~from_host:"alice" ~addr:"s" ~port:1 ~proto:Costmodel.Tcp in
  let c2 = Simnet.connect net ~from_host:"bob" ~addr:"s" ~port:1 ~proto:Costmodel.Tcp in
  Testkit.check_string "c1 first" "alice:1" (Simnet.call c1 "");
  Testkit.check_string "c2 has own state" "bob:1" (Simnet.call c2 "");
  Testkit.check_string "c1 second" "alice:2" (Simnet.call c1 "")

let test_clock () =
  let clock = Simclock.create () in
  Alcotest.(check (float 0.001)) "zero" 0.0 (Simclock.now_us clock);
  Simclock.advance clock 1500.0;
  Alcotest.(check (float 0.001)) "advanced" 1500.0 (Simclock.now_us clock);
  Alcotest.(check (float 0.0001)) "seconds" 0.0015 (Simclock.now_s clock);
  Testkit.check_int "whole seconds" 0 (Simclock.seconds clock);
  Alcotest.check_raises "negative" (Invalid_argument "Simclock.advance: negative") (fun () ->
      Simclock.advance clock (-1.0))

(* Fault-injector transparency: with the *empty* fault plan armed, the
   network is indistinguishable from one with no injector at all —
   every message is delivered, exactly once, and per (src, dst) pair
   the arrival order at the server equals the send order. *)
let ordering_prop =
  let module Fault = Sfs_fault.Fault in
  QCheck.Test.make ~count:100 ~name:"empty fault plan preserves per-pair delivery order"
    QCheck.(
      pair small_int
        (list_of_size (Gen.int_range 0 40) (pair (int_bound 2) (string_of_size (Gen.int_range 0 64)))))
    (fun (seed_n, sends) ->
      let run (armed : bool) : (string * string) list =
        let clock = Simclock.create () in
        let net = Simnet.create clock in
        let h = Simnet.add_host net "srv" in
        let trace = ref [] in
        Simnet.listen net h ~port:9 (fun ~peer msg ->
            trace := (peer, msg) :: !trace;
            "ok");
        if armed then
          Simnet.set_injector net
            (Some
               (Fault.injector
                  ~now_us:(fun () -> Simclock.now_us clock)
                  (Fault.none ~seed:(string_of_int seed_n))));
        let conns =
          Array.init 3 (fun i ->
              Simnet.connect net ~from_host:(Printf.sprintf "c%d" i) ~addr:"srv" ~port:9
                ~proto:Costmodel.Udp)
        in
        List.iter (fun (ci, msg) -> ignore (Simnet.call conns.(ci) msg)) sends;
        List.rev !trace
      in
      let armed = run true in
      armed = run false
      && List.for_all
           (fun ci ->
             let src = Printf.sprintf "c%d" ci in
             List.filter_map (fun (p, m) -> if p = src then Some m else None) armed
             = List.filter_map (fun (c, m) -> if c = ci then Some m else None) sends)
           [ 0; 1; 2 ])

(* --- Eventq: the discrete-event engine's heap (DESIGN.md §15) --- *)

module Eventq = Sfs_net.Eventq

(* Pop order equals a stable sort by timestamp: min-first, FIFO among
   equal timestamps.  The oracle is List.stable_sort on (time, index). *)
let eventq_order_prop =
  QCheck.Test.make ~count:300 ~name:"eventq pops timestamp-sorted, FIFO-stable on ties"
    QCheck.(list (int_bound 20))
    (fun times ->
      let q = Eventq.create () in
      List.iteri (fun i t -> Eventq.push q ~at:(float_of_int t) i) times;
      let rec drain acc =
        match Eventq.pop q with None -> List.rev acc | Some (at, v) -> drain ((at, v) :: acc)
      in
      let popped = drain [] in
      let oracle =
        List.stable_sort
          (fun (a, _) (b, _) -> compare (a : float) b)
          (List.mapi (fun i t -> (float_of_int t, i)) times)
      in
      popped = oracle)

(* The internal array satisfies the heap invariant after every push and
   pop of an arbitrary interleaving. *)
let eventq_heap_prop =
  QCheck.Test.make ~count:300 ~name:"eventq heap invariant holds under push/pop interleavings"
    QCheck.(list (pair bool (int_bound 1000)))
    (fun ops ->
      let q = Eventq.create () in
      List.for_all
        (fun (is_pop, t) ->
          (if is_pop then ignore (Eventq.pop q)
           else Eventq.push q ~at:(float_of_int t /. 7.0) t);
          Eventq.check q && Eventq.length q >= 0)
        ops
      && (Eventq.is_empty q || Eventq.peek_at q <> None))

let test_eventq_nan () =
  let q = Eventq.create () in
  Alcotest.check_raises "nan rejected" (Invalid_argument "Eventq.push: NaN timestamp") (fun () ->
      Eventq.push q ~at:Float.nan ())

let test_clock_events () =
  let clock = Simclock.create () in
  let order = ref [] in
  let mark tag () = order := tag :: !order in
  Simclock.schedule clock ~at_us:30.0 (mark "c");
  Simclock.schedule clock ~at_us:10.0 (mark "a");
  Simclock.schedule clock ~at_us:10.0 (fun () ->
      mark "b" ();
      (* events may schedule further events, including at now *)
      Simclock.schedule clock ~at_us:5.0 (mark "clamped"));
  let n = Simclock.run_all clock in
  Testkit.check_int "events run" 4 n;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "clamped"; "c" ] (List.rev !order);
  Testkit.check_bool "clock at last event" true (Simclock.now_us clock = 30.0);
  Testkit.check_int "queue drained" 0 (Simclock.pending_events clock)

let test_clock_event_budget () =
  let clock = Simclock.create () in
  let rec reschedule () = Simclock.schedule clock ~at_us:(Simclock.now_us clock +. 1.0) reschedule in
  reschedule ();
  Alcotest.check_raises "runaway backstop" (Failure "Simclock.run_all: event budget exhausted")
    (fun () -> ignore (Simclock.run_all ~max_events:100 clock))

let test_admission () =
  let _, net, h = make_net () in
  Simnet.set_admission h (Some 1);
  let c1 = Simnet.connect net ~from_host:"c0" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Testkit.check_int "one active conn" 1 (Simnet.host_active_conns h);
  Alcotest.check_raises "refused at the cap" Simnet.Timeout (fun () ->
      ignore (Simnet.connect net ~from_host:"c1" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp));
  Simnet.close c1;
  Testkit.check_int "slot freed" 0 (Simnet.host_active_conns h);
  let c2 = Simnet.connect net ~from_host:"c1" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Testkit.check_string "admitted after close" "echo:ok" (Simnet.call c2 "ok");
  Simnet.close c2;
  Simnet.close c2;
  (* idempotent: double close must not free the slot twice *)
  Testkit.check_int "close idempotent" 0 (Simnet.host_active_conns h)

let test_host_occupy () =
  let _, _, h = make_net () in
  (* Back-to-back slices queue; a gap leaves the queue idle. *)
  Testkit.check_bool "first slice" true (Simnet.host_occupy h ~at_us:0.0 ~dur_us:10.0 = 10.0);
  Testkit.check_bool "queued behind" true (Simnet.host_occupy h ~at_us:5.0 ~dur_us:10.0 = 20.0);
  Testkit.check_bool "idle gap" true (Simnet.host_occupy h ~at_us:50.0 ~dur_us:5.0 = 55.0);
  Testkit.check_bool "timeline" true (Simnet.host_timeline h = 55.0)

let test_served_accounting () =
  let clock, net, h = make_net () in
  let c = Simnet.connect net ~from_host:"c0" ~addr:"server.example.com" ~port:7 ~proto:Costmodel.Tcp in
  Testkit.check_bool "starts at zero" true (Simnet.host_served_us h = 0.0);
  ignore (Simnet.call c "hello");
  let served = Simnet.host_served_us h in
  (* The echo handler charges nothing itself, so served time is the
     handler's footprint: zero here — but the accumulator must not
     pick up wire time, which the clock did advance. *)
  Testkit.check_bool "no handler charge" true (served = 0.0);
  Testkit.check_bool "wire time charged" true (Simclock.now_us clock > 0.0)

(* --- Rpc_mux: windowed dispatch (DESIGN.md §11) --- *)

module Rpc_mux = Sfs_net.Rpc_mux

(* wire 0.1 µs/byte, 100 µs fixed latency, 5 µs per-reply residual,
   40 µs of server time per call; requests are 100 B, replies 200 B. *)
let make_mux window clock =
  Rpc_mux.create ~window ~clock
    ~wire_us:(fun b -> float_of_int b /. 10.0)
    ~latency_us:100.0 ~op_us:5.0
    ~exchange:(fun req ->
      { Rpc_mux.c_payload = "r:" ^ req; c_server_us = 40.0; c_wire_bytes = 200; c_crypto_us = 0.0; c_claim_us = 0.0 })
    ()

let test_mux_timing () =
  (* window=1 degenerates to the serial schedule: every call pays the
     full req-wire + server + reply-wire + residual + latency. *)
  let clock1 = Simclock.create () in
  let mux1 = make_mux 1 clock1 in
  let per_call = 10.0 +. 40.0 +. 20.0 +. 5.0 +. 100.0 in
  Testkit.check_string "payload" "r:a" (Rpc_mux.await mux1 (Rpc_mux.submit mux1 ~wire_bytes:100 "a"));
  Alcotest.(check (float 1e-6)) "serial cost" per_call (Simclock.now_us clock1);
  ignore (Rpc_mux.await mux1 (Rpc_mux.submit mux1 ~wire_bytes:100 "b"));
  Alcotest.(check (float 1e-6)) "serial cost x2" (2.0 *. per_call) (Simclock.now_us clock1);
  (* window=8: the eight round trips overlap; after the first reply's
     full pipeline fill (175 µs) each further reply is gated only by
     the 40 µs server bottleneck, not the whole round trip. *)
  let clock8 = Simclock.create () in
  let mux8 = make_mux 8 clock8 in
  let ts = List.init 8 (fun i -> Rpc_mux.submit mux8 ~wire_bytes:100 (string_of_int i)) in
  List.iteri
    (fun i t -> Testkit.check_string "reply" ("r:" ^ string_of_int i) (Rpc_mux.await mux8 t))
    ts;
  Alcotest.(check (float 1e-6)) "pipelined wall-clock" (175.0 +. (7.0 *. 40.0)) (Simclock.now_us clock8);
  Testkit.check_int "all complete" 0 (Rpc_mux.in_flight mux8)

let test_mux_semantics () =
  let clock = Simclock.create () in
  let calls = ref [] in
  let boom = ref false in
  let mux =
    Rpc_mux.create ~window:2 ~clock
      ~wire_us:(fun b -> float_of_int b)
      ~latency_us:10.0 ~op_us:1.0
      ~exchange:(fun req ->
        calls := req :: !calls;
        if !boom then failwith ("boom:" ^ req);
        { Rpc_mux.c_payload = req; c_server_us = 5.0; c_wire_bytes = 1; c_crypto_us = 0.0; c_claim_us = 0.0 })
      ()
  in
  let fired = ref 0 in
  let t1 = Rpc_mux.submit ~on_complete:(fun _ -> incr fired) mux ~wire_bytes:1 "a" in
  let _t2 = Rpc_mux.submit mux ~wire_bytes:1 "b" in
  Testkit.check_int "window full" 2 (Rpc_mux.in_flight mux);
  (* A third submit stalls: the oldest ticket is forced to completion
     (callback fires) before the new call takes its slot. *)
  let t3 = Rpc_mux.submit mux ~wire_bytes:1 "c" in
  Testkit.check_int "stall completed oldest" 1 !fired;
  Testkit.check_int "slot reused" 2 (Rpc_mux.in_flight mux);
  (* Exchanges ran eagerly, in submission order — the server saw the
     same sequence a serial client would send. *)
  Testkit.check_string "submission order" "a,b,c" (String.concat "," (List.rev !calls));
  Testkit.check_string "await after forced completion" "a" (Rpc_mux.await mux t1);
  Testkit.check_int "callback fires exactly once" 1 !fired;
  Testkit.check_string "out-of-order await" "c" (Rpc_mux.await mux t3);
  Rpc_mux.drain mux;
  Testkit.check_int "drained" 0 (Rpc_mux.in_flight mux);
  (* A failing exchange is captured at submit and re-raised at await. *)
  boom := true;
  let tx = Rpc_mux.submit mux ~wire_bytes:1 "x" in
  (match Rpc_mux.await mux tx with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Testkit.check_string "failure surfaces at await" "boom:x" m);
  Alcotest.check_raises "window must be positive"
    (Invalid_argument "Rpc_mux.create: window < 1") (fun () ->
      ignore (make_mux 0 (Simclock.create ())))

let suite =
  ( "net",
    [
      Alcotest.test_case "basic exchange" `Quick test_basic_exchange;
      Alcotest.test_case "no route" `Quick test_no_route;
      Alcotest.test_case "aliases" `Quick test_aliases;
      Alcotest.test_case "cost model timing" `Quick test_timing;
      Alcotest.test_case "adversary tamper" `Quick test_tap_tamper;
      Alcotest.test_case "adversary drop" `Quick test_tap_drop;
      Alcotest.test_case "adversary replay" `Quick test_replay_via_inject;
      Alcotest.test_case "closed connection" `Quick test_closed_conn;
      Alcotest.test_case "per-connection state" `Quick test_per_connection_state;
      Alcotest.test_case "clock" `Quick test_clock;
      Alcotest.test_case "clock events" `Quick test_clock_events;
      Alcotest.test_case "clock event budget" `Quick test_clock_event_budget;
      Alcotest.test_case "eventq nan" `Quick test_eventq_nan;
      Alcotest.test_case "admission" `Quick test_admission;
      Alcotest.test_case "host occupy" `Quick test_host_occupy;
      Alcotest.test_case "served accounting" `Quick test_served_accounting;
      Alcotest.test_case "rpc mux timing" `Quick test_mux_timing;
      Alcotest.test_case "rpc mux semantics" `Quick test_mux_semantics;
    ]
    @ Testkit.to_alcotest [ ordering_prop; eventq_order_prop; eventq_heap_prop ] )
