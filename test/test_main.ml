let () =
  Alcotest.run "sfs"
    [
      Test_util.suite;
      Test_bignum.suite;
      Test_crypto.suite;
      Test_xdr.suite;
      Test_net.suite;
      Test_nfs.suite;
      Test_memfs_model.suite;
      Test_proto.suite;
      Test_core.suite;
      Test_workload.suite;
      Test_replica.suite;
      Test_fault.suite;
      Test_integration.suite;
      Test_lint.suite;
      Test_taint.suite;
      Test_obs.suite;
      Test_sketch.suite;
      Test_trace.suite;
    ]
