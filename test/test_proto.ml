open Sfs_proto
module Rabin = Sfs_crypto.Rabin
module Prng = Sfs_crypto.Prng
module Simclock = Sfs_net.Simclock

let rng = Prng.create [ "proto-test" ]
let server_key = lazy (Rabin.generate ~bits:512 rng)
let temp_key = lazy (Rabin.generate ~bits:512 rng)

(* --- HostID --- *)

let test_hostid () =
  let sk = Lazy.force server_key in
  let hostid = Hostid.of_location_key ~location:"sfs.lcs.mit.edu" ~pubkey:sk.Rabin.pub in
  Testkit.check_int "20 bytes" 20 (String.length hostid);
  Testkit.check_int "base32 width" 32 (String.length (Hostid.to_base32 hostid));
  Alcotest.(check (option string)) "roundtrip" (Some hostid) (Hostid.of_base32 (Hostid.to_base32 hostid));
  Testkit.check_bool "check" true (Hostid.check ~location:"sfs.lcs.mit.edu" ~pubkey:sk.Rabin.pub ~hostid);
  (* Location binding: same key under another name is a different HostID. *)
  Testkit.check_bool "location bound" false
    (Hostid.check ~location:"evil.example.com" ~pubkey:sk.Rabin.pub ~hostid);
  (* Key binding. *)
  let other = Lazy.force temp_key in
  Testkit.check_bool "key bound" false
    (Hostid.check ~location:"sfs.lcs.mit.edu" ~pubkey:other.Rabin.pub ~hostid);
  Testkit.check_bool "bad base32" true (Hostid.of_base32 "shorty" = None)

(* --- Key negotiation --- *)

let run_negotiation ?(tamper_pubkey = false) () =
  let sk = Lazy.force server_key in
  let tk = Lazy.force temp_key in
  let location = "server.example.com" in
  let hostid = Hostid.of_location_key ~location ~pubkey:sk.Rabin.pub in
  let server_keys = ref None in
  let exchange msg =
    (* A miniature server loop answering the two negotiation steps. *)
    match Sfs_xdr.Xdr.run msg Keyneg.dec_connect_req with
    | Ok _ ->
        let pub = if tamper_pubkey then (Lazy.force temp_key).Rabin.pub else sk.Rabin.pub in
        Sfs_xdr.Xdr.encode Keyneg.enc_connect_res (Keyneg.Connect_ok { pubkey = pub })
    | Result.Error _ -> (
        match Keyneg.server_negotiate ~rng ~server_key:sk msg with
        | Ok (keys, response) ->
            server_keys := Some keys;
            response
        | Result.Error e -> Alcotest.fail e)
  in
  let result =
    Keyneg.client_negotiate ~rng ~temp_key:tk ~location ~hostid ~service:Keyneg.Fs exchange
  in
  (result, !server_keys)

let test_keyneg_agreement () =
  let result, server_keys = run_negotiation () in
  match server_keys with
  | None -> Alcotest.fail "server never negotiated"
  | Some sk ->
      Testkit.check_string "kcs" (Sfs_util.Hex.encode sk.Keyneg.kcs)
        (Sfs_util.Hex.encode result.Keyneg.keys.Keyneg.kcs);
      Testkit.check_string "ksc" (Sfs_util.Hex.encode sk.Keyneg.ksc)
        (Sfs_util.Hex.encode result.Keyneg.keys.Keyneg.ksc);
      Testkit.check_string "session id" (Sfs_util.Hex.encode sk.Keyneg.session_id)
        (Sfs_util.Hex.encode result.Keyneg.keys.Keyneg.session_id);
      Testkit.check_bool "directional keys differ" false (sk.Keyneg.kcs = sk.Keyneg.ksc)

let test_keyneg_wrong_key_rejected () =
  (* A man-in-the-middle substituting its own public key fails the
     HostID check — the defining property of self-certifying names. *)
  match run_negotiation ~tamper_pubkey:true () with
  | exception Keyneg.Negotiation_failed msg ->
      Testkit.check_bool "failure reported" true (String.length msg > 0)
  | _ -> Alcotest.fail "accepted a wrong public key"

(* --- Secure channel --- *)

let make_channel_pair ?(encrypt = true) () =
  let kcs = String.make 20 'a' and ksc = String.make 20 'b' in
  let client = Channel.create ~encrypt ~send_key:kcs ~recv_key:ksc () in
  let server = Channel.create ~encrypt ~send_key:ksc ~recv_key:kcs () in
  (client, server)

(* Unwrap a successful open; fail the test on a channel error. *)
let open_exn (ch : Channel.t) (wire : string) : string =
  match Channel.open_ ch wire with
  | Ok plain -> plain
  | Error `Mac_mismatch -> Alcotest.fail "unexpected mac mismatch"
  | Error `Replay -> Alcotest.fail "unexpected replay/desync"

let check_rejected name (expected : Channel.open_error) (ch : Channel.t) (wire : string) : unit =
  match Channel.open_ ch wire with
  | Ok _ -> Alcotest.fail (name ^ ": accepted bad traffic")
  | Error e ->
      Testkit.check_bool (name ^ ": error class") true (e = expected)

let test_channel_roundtrip () =
  let client, server = make_channel_pair () in
  List.iter
    (fun msg ->
      let wire = Channel.seal client msg in
      Testkit.check_bool "ciphertext differs" true (wire <> msg || msg = "");
      Testkit.check_string "delivered" msg (open_exn server wire);
      (* And the reverse direction. *)
      let wire2 = Channel.seal server ("reply to " ^ msg) in
      Testkit.check_string "reply" ("reply to " ^ msg) (open_exn client wire2))
    [ "hello"; ""; String.make 10000 'z'; "\x00\x01\x02" ]

let test_channel_tamper () =
  let client, server = make_channel_pair () in
  let wire = Channel.seal client "important message" in
  let tampered = Bytes.of_string wire in
  Bytes.set tampered 5 (Char.chr (Char.code (Bytes.get tampered 5) lxor 0x01));
  (* A flipped ciphertext bit decrypts to a well-framed message whose
     tag no longer verifies. *)
  check_rejected "tampered" `Mac_mismatch server (Bytes.to_string tampered)

let test_channel_replay () =
  let client, server = make_channel_pair () in
  let wire = Channel.seal client "pay $100" in
  Testkit.check_string "first ok" "pay $100" (open_exn server wire);
  (* Replaying the identical ciphertext desynchronizes the stream: the
     decrypted length word is garbage. *)
  check_rejected "replay" `Replay server wire

let test_channel_reorder () =
  let client, server = make_channel_pair () in
  let w1 = Channel.seal client "first" in
  let w2 = Channel.seal client "second" in
  (match Channel.open_ server w2 with
  | Ok _ -> Alcotest.fail "accepted reordered message"
  | Error (`Mac_mismatch | `Replay) -> ());
  (* After a failure the stream is poisoned: even the valid message
     fails (the connection must be torn down, as in SFS). *)
  match Channel.open_ server w1 with
  | Ok _ -> Alcotest.fail "poisoned stream accepted a message"
  | Error (`Mac_mismatch | `Replay) -> ()

let test_channel_no_encryption_still_macs () =
  let client, server = make_channel_pair ~encrypt:false () in
  let wire = Channel.seal client "plaintext mode" in
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Testkit.check_bool "actually plaintext" true (contains wire "plaintext mode");
  Testkit.check_string "delivered" "plaintext mode" (open_exn server wire);
  (* Flip a payload byte (offset 4 skips the length word, which would
     fail framing as [`Replay] rather than the MAC). *)
  let wire2 = Channel.seal client "plaintext mode" in
  let tampered = Bytes.of_string wire2 in
  Bytes.set tampered 4 'X';
  check_rejected "still tamper-proof" `Mac_mismatch server (Bytes.to_string tampered);
  (* And a mangled length word is classified as desync. *)
  let wire3 = Channel.seal client "plaintext mode" in
  check_rejected "bad frame is desync" `Replay server ("X" ^ String.sub wire3 1 (String.length wire3 - 1))

let test_channel_charges_crypto_time () =
  let clock = Simclock.create () in
  let kcs = String.make 20 'k' in
  let ch = Channel.create ~clock ~send_key:kcs ~recv_key:kcs () in
  let _, us = Simclock.time clock (fun () -> ignore (Channel.seal ch (String.make 8192 'x'))) in
  (* 10 us fixed + 8192 * 0.128 = ~1059 us, charged at the sender *)
  Testkit.check_bool "crypto time charged" true (us > 900.0 && us < 1200.0);
  let ch2 = Channel.create ~encrypt:false ~clock ~send_key:kcs ~recv_key:kcs () in
  let _, us2 = Simclock.time clock (fun () -> ignore (Channel.seal ch2 (String.make 8192 'x'))) in
  Alcotest.(check (float 0.001)) "no charge without encryption" 0.0 us2

(* --- Auth protocol --- *)

let user_key = lazy (Rabin.generate ~bits:512 rng)

let test_auth_roundtrip () =
  let uk = Lazy.force user_key in
  let info =
    {
      Authproto.service = "FS";
      location = "server.example.com";
      hostid = String.make 20 'h';
      session_id = String.make 20 's';
    }
  in
  let authid = Authproto.authid_of info in
  let msg = Authproto.make_authmsg ~key:uk info ~seqno:7 in
  Testkit.check_bool "validates" true (Authproto.validate_authmsg msg ~authid ~seqno:7);
  Testkit.check_bool "wrong seqno" false (Authproto.validate_authmsg msg ~authid ~seqno:8);
  Testkit.check_bool "wrong authid" false
    (Authproto.validate_authmsg msg ~authid:(String.make 20 'x') ~seqno:7);
  (* Serialization roundtrip. *)
  match Authproto.authmsg_of_string (Authproto.authmsg_to_string msg) with
  | Some msg' -> Testkit.check_bool "serialized validates" true (Authproto.validate_authmsg msg' ~authid ~seqno:7)
  | None -> Alcotest.fail "authmsg roundtrip"

let test_auth_session_binding () =
  (* An AuthID binds the session: the same user signing for another
     session produces a different AuthID, so a stolen request does not
     transplant. *)
  let mk session_id =
    Authproto.authid_of
      { Authproto.service = "FS"; location = "l"; hostid = String.make 20 'h'; session_id }
  in
  Testkit.check_bool "session bound" false (mk (String.make 20 '1') = mk (String.make 20 '2'))

let test_auth_audit_trail () =
  let uk = Lazy.force user_key in
  let audited = ref [] in
  let info =
    { Authproto.service = "FS"; location = "srv"; hostid = String.make 20 'h'; session_id = String.make 20 's' }
  in
  ignore (Authproto.make_authmsg ~audit:(fun i -> audited := i :: !audited) ~key:uk info ~seqno:1);
  Testkit.check_int "audit recorded" 1 (List.length !audited)

let test_seq_window () =
  let w = Authproto.make_window () in
  Testkit.check_bool "first" true (Authproto.window_accept w 5);
  Testkit.check_bool "replay" false (Authproto.window_accept w 5);
  Testkit.check_bool "forward" true (Authproto.window_accept w 10);
  (* Out-of-order within the window is accepted once (footnote 4). *)
  Testkit.check_bool "out of order" true (Authproto.window_accept w 7);
  Testkit.check_bool "out of order replay" false (Authproto.window_accept w 7);
  Testkit.check_bool "far future" true (Authproto.window_accept w 1000);
  Testkit.check_bool "far past rejected" false (Authproto.window_accept w 10);
  Testkit.check_bool "negative" false (Authproto.window_accept w (-1))

(* The single-buffer seal/open_ fast path must round-trip any traffic
   pattern: message sizes from empty through several buffer-growth
   doublings, in both directions, with and without encryption. *)
let channel_roundtrip_prop =
  QCheck.Test.make ~count:50 ~name:"seal/open_ roundtrip across sizes"
    QCheck.(pair bool (list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 10_000)))
    (fun (encrypt, sizes) ->
      let client, server = make_channel_pair ~encrypt () in
      List.for_all
        (fun n ->
          let msg = String.init n (fun i -> Char.chr ((i * 31 + n) land 0xff)) in
          Channel.open_ server (Channel.seal client msg) = Ok msg
          && Channel.open_ client (Channel.seal server msg) = Ok msg)
        (0 :: sizes))

(* Precomputed keystream must be invisible on the wire: a sender that
   banks `Send keystream at arbitrary points produces byte-identical
   ciphertext to an eager sender, and a receiver that banks `Recv
   keystream opens it identically (claiming only time that was actually
   banked).  Budgets are donated, never charged, so no clock is needed. *)
let channel_precompute_identity_prop =
  QCheck.Test.make ~count:50 ~name:"precomputed keystream is byte-identical on the wire"
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 8) (pair (int_range 0 10_000) (int_range 0 2_000)))
    (fun msgs ->
      let pre_client, pre_server = make_channel_pair () in
      let eager_client, eager_server = make_channel_pair () in
      (* Banked keystream carries over between messages, so claims are
         bounded by the cumulative donation, not the per-round one. *)
      let banked_total = ref 0.0 and claimed_total = ref 0.0 in
      List.for_all
        (fun (n, budget) ->
          let msg = String.init n (fun i -> Char.chr ((i * 37 + n) land 0xff)) in
          let banked_send =
            Channel.precompute ~dir:`Send pre_client ~budget_us:(float_of_int budget)
          in
          banked_total :=
            !banked_total
            +. Channel.precompute ~dir:`Recv pre_server ~budget_us:(float_of_int budget);
          let wire = Channel.seal pre_client msg in
          let wire_eager = Channel.seal eager_client msg in
          ignore (Channel.open_ eager_server wire_eager);
          match Channel.open_ pre_server wire with
          | Ok plain ->
              let claim = Channel.take_recv_claim pre_server in
              claimed_total := !claimed_total +. claim;
              String.equal wire wire_eager && String.equal plain msg
              && banked_send >= 0.0
              && banked_send <= float_of_int budget
              && claim >= 0.0
              && !claimed_total <= !banked_total +. 0.000001
          | Error _ -> false)
        msgs)

(* The zero-copy open must be observationally identical to the copying
   one: same plaintext bytes, same stream advance, with and without
   encryption. *)
let channel_open_slice_prop =
  QCheck.Test.make ~count:50 ~name:"open_slice agrees with open_"
    QCheck.(pair bool (list_of_size (QCheck.Gen.int_range 1 8) (int_range 0 10_000)))
    (fun (encrypt, sizes) ->
      let client_a, server_a = make_channel_pair ~encrypt () in
      let client_b, server_b = make_channel_pair ~encrypt () in
      List.for_all
        (fun n ->
          let msg = String.init n (fun i -> Char.chr ((i * 41 + n) land 0xff)) in
          let wire_a = Channel.seal client_a msg in
          let wire_b = Channel.seal client_b msg in
          match (Channel.open_ server_a wire_a, Channel.open_slice server_b wire_b) with
          | Ok plain, Ok slice ->
              String.equal plain (Sfs_util.Slice.to_string slice)
              && Sfs_util.Slice.length slice = String.length msg
          | _ -> false)
        (0 :: sizes))

let seq_window_prop =
  QCheck.Test.make ~count:200 ~name:"window accepts each seqno at most once"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (int_range 0 200))
    (fun seqnos ->
      let w = Authproto.make_window () in
      let accepted = Hashtbl.create 16 in
      List.for_all
        (fun s ->
          let r = Authproto.window_accept w s in
          if r && Hashtbl.mem accepted s then false (* double accept: bug *)
          else begin
            if r then Hashtbl.replace accepted s ();
            true
          end)
        seqnos)

(* --- Leases --- *)

let test_leases () =
  let clock = Simclock.create () in
  let reg = Lease.create ~lease_s:60 clock in
  let c1 = Lease.register_conn reg in
  let c2 = Lease.register_conn reg in
  Lease.grant reg ~conn:c1 "fh-a";
  Lease.grant reg ~conn:c2 "fh-a";
  (* c1 mutates: only c2 gets the callback. *)
  Lease.invalidate reg ~by:c1 "fh-a";
  Alcotest.(check (list string)) "c2 invalidated" [ "fh-a" ] (Lease.take reg c2);
  Alcotest.(check (list string)) "c1 not notified of own write" [] (Lease.take reg c1);
  Alcotest.(check (list string)) "queue drained" [] (Lease.take reg c2)

let test_lease_expiry () =
  let clock = Simclock.create () in
  let reg = Lease.create ~lease_s:60 clock in
  let c1 = Lease.register_conn reg in
  let c2 = Lease.register_conn reg in
  Lease.grant reg ~conn:c2 "fh-b";
  (* After the lease expires no callback is needed. *)
  Simclock.advance clock 61_000_000.0;
  Lease.invalidate reg ~by:c1 "fh-b";
  Alcotest.(check (list string)) "expired lease not notified" [] (Lease.take reg c2)

let test_lease_dedup () =
  let clock = Simclock.create () in
  let reg = Lease.create clock in
  let c1 = Lease.register_conn reg in
  let c2 = Lease.register_conn reg in
  Lease.grant reg ~conn:c2 "fh-c";
  Lease.invalidate reg ~by:c1 "fh-c";
  Lease.grant reg ~conn:c2 "fh-c";
  Lease.invalidate reg ~by:c1 "fh-c";
  Alcotest.(check (list string)) "deduplicated" [ "fh-c" ] (Lease.take reg c2)

(* --- SFS RW wire messages --- *)

let test_sfsrw_roundtrip () =
  let reqs =
    [
      Sfsrw.Fs_call { xid = 7; authno = 3; proc = 6; trace = 9; span = 4; args = "argdata" };
      Sfsrw.Auth_req { seqno = 12; authmsg = "msgdata" };
    ]
  in
  List.iter
    (fun r ->
      match Sfsrw.request_of_string (Sfsrw.request_to_string r) with
      | Ok r' -> Testkit.check_bool "request roundtrip" true (r = r')
      | Result.Error e -> Alcotest.fail e)
    reqs;
  let resps =
    [
      Sfsrw.Fs_reply { results = "res"; invalidations = [ "fh1"; "fh2" ] };
      Sfsrw.Auth_granted { authno = 4; seqno = 12 };
      Sfsrw.Auth_denied { seqno = 13; reason = "no such user" };
      Sfsrw.Proto_error "broken";
    ]
  in
  List.iter
    (fun r ->
      match Sfsrw.response_of_string (Sfsrw.response_to_string r) with
      | Ok r' -> Testkit.check_bool "response roundtrip" true (r = r')
      | Result.Error e -> Alcotest.fail e)
    resps

(* --- Read-only dialect --- *)

let test_readonly_objects () =
  let file = Readonly_proto.O_file "contents of README" in
  let h = Readonly_proto.hash_obj file in
  Testkit.check_int "sha1 size" 20 (String.length h);
  let dir =
    Readonly_proto.O_dir
      [ { Readonly_proto.e_name = "README"; e_kind = Readonly_proto.K_file; e_hash = h } ]
  in
  (match Readonly_proto.obj_of_string (Readonly_proto.obj_to_string dir) with
  | Ok (Readonly_proto.O_dir [ e ]) ->
      Testkit.check_string "entry name" "README" e.Readonly_proto.e_name;
      Testkit.check_string "entry hash" (Sfs_util.Hex.encode h) (Sfs_util.Hex.encode e.Readonly_proto.e_hash)
  | _ -> Alcotest.fail "dir roundtrip");
  (* Content addressing: different content, different hash. *)
  Testkit.check_bool "hash binds content" false
    (Readonly_proto.hash_obj (Readonly_proto.O_file "x") = Readonly_proto.hash_obj (Readonly_proto.O_file "y"))

let test_readonly_fsinfo_signature () =
  let sk = Lazy.force server_key in
  let info = { Readonly_proto.root_hash = String.make 20 'r'; issued_s = 100; duration_s = 3600; serial = 5 } in
  let signature = Readonly_proto.sign_fsinfo sk info in
  Testkit.check_bool "verifies" true (Readonly_proto.verify_fsinfo sk.Rabin.pub info ~signature);
  (* A rolled-back serial or altered root must fail. *)
  Testkit.check_bool "root bound" false
    (Readonly_proto.verify_fsinfo sk.Rabin.pub
       { info with Readonly_proto.root_hash = String.make 20 'x' }
       ~signature);
  Testkit.check_bool "serial bound" false
    (Readonly_proto.verify_fsinfo sk.Rabin.pub { info with Readonly_proto.serial = 4 } ~signature);
  let other = Lazy.force temp_key in
  Testkit.check_bool "key bound" false (Readonly_proto.verify_fsinfo other.Rabin.pub info ~signature)

let suite =
  ( "proto",
    [
      Alcotest.test_case "hostid" `Quick test_hostid;
      Alcotest.test_case "keyneg agreement" `Quick test_keyneg_agreement;
      Alcotest.test_case "keyneg MITM rejected" `Quick test_keyneg_wrong_key_rejected;
      Alcotest.test_case "channel roundtrip" `Quick test_channel_roundtrip;
      Alcotest.test_case "channel tamper" `Quick test_channel_tamper;
      Alcotest.test_case "channel replay" `Quick test_channel_replay;
      Alcotest.test_case "channel reorder" `Quick test_channel_reorder;
      Alcotest.test_case "channel no-encryption ablation" `Quick test_channel_no_encryption_still_macs;
      Alcotest.test_case "channel crypto cost" `Quick test_channel_charges_crypto_time;
      Alcotest.test_case "auth roundtrip" `Quick test_auth_roundtrip;
      Alcotest.test_case "auth session binding" `Quick test_auth_session_binding;
      Alcotest.test_case "auth audit trail" `Quick test_auth_audit_trail;
      Alcotest.test_case "sequence window" `Quick test_seq_window;
      Alcotest.test_case "leases basic" `Quick test_leases;
      Alcotest.test_case "lease expiry" `Quick test_lease_expiry;
      Alcotest.test_case "lease dedup" `Quick test_lease_dedup;
      Alcotest.test_case "sfsrw wire roundtrip" `Quick test_sfsrw_roundtrip;
      Alcotest.test_case "readonly objects" `Quick test_readonly_objects;
      Alcotest.test_case "readonly fsinfo signature" `Quick test_readonly_fsinfo_signature;
    ]
    @ Testkit.to_alcotest
        [
          channel_roundtrip_prop;
          channel_precompute_identity_prop;
          channel_open_slice_prop;
          seq_window_prop;
        ] )
