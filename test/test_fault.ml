(* The fault-injection harness (lib/fault + Simnet injector hooks).

   Three pillars:
   - determinism: same seed, same workload => byte-identical
     fault/recovery ledger;
   - victim recovery: retransmit caches absorb duplicates, clients
     reconnect across server crash windows;
   - the oracle property: under any generated fault plan, the file
     system state that survives equals a fault-free run of the same
     operations — faults may cost time, never correctness. *)

module Fault = Sfs_fault.Fault
module Stacks = Sfs_workload.Stacks
module Simclock = Sfs_net.Simclock
module Memfs = Sfs_nfs.Memfs
module Cachefs = Sfs_nfs.Cachefs
module Obs = Sfs_obs.Obs
module Vfs = Sfs_core.Vfs

(* --- A tiny deterministic workload, driven through the VFS --- *)

type op =
  | Mkdir of string
  | Write of string * string (* rel path, contents *)
  | Read of string
  | Remove of string
  | Rename of string * string
  | Readdir of string

(* Faults surface as errors ([Error _] results, RPC give-ups, raw
   timeouts); the workload shrugs and moves on — what matters is that
   the surviving state matches the oracle, not that every op wins. *)
let apply (w : Stacks.world) (op : op) : unit =
  let vfs = w.Stacks.vfs and cred = w.Stacks.cred in
  let p rel = w.Stacks.workdir ^ "/" ^ rel in
  let tolerate f =
    try f () with Sfs_nfs.Nfs_client.Rpc_failure _ | Sfs_net.Simnet.Timeout -> ()
  in
  tolerate (fun () ->
      match op with
      | Mkdir d -> ignore (Vfs.mkdir vfs cred (p d))
      | Write (f, data) -> ignore (Vfs.write_file vfs cred (p f) data)
      | Read f -> ignore (Vfs.read_file vfs cred (p f))
      | Remove f -> ignore (Vfs.unlink vfs cred (p f))
      | Rename (a, b) -> ignore (Vfs.rename vfs cred ~src:(p a) ~dst:(p b))
      | Readdir d -> ignore (Vfs.readdir vfs cred (p d)))

let run_ops (w : Stacks.world) (ops : op list) : unit = List.iter (apply w) ops

(* Deterministic op sequence from an integer seed: mkdirs first so
   later ops have somewhere to land, then a shuffle of mutations and
   reads over a small fixed namespace (d0-d2 / f0-f5). *)
let ops_of_seed (seed : int) : op list =
  let r = Testkit.make_rand (seed + 1) in
  let dir () = Printf.sprintf "d%d" (r () mod 3) in
  let file () =
    let d = r () mod 4 in
    let f = Printf.sprintf "f%d" (r () mod 6) in
    if d = 3 then f else Printf.sprintf "d%d/%s" d f
  in
  let n = 12 + (r () mod 13) in
  [ Mkdir "d0"; Mkdir "d1"; Mkdir "d2" ]
  @ List.init n (fun _ ->
        match r () mod 8 with
        | 0 -> Mkdir (dir ())
        | 1 | 2 | 3 -> Write (file (), Testkit.rand_string r (8 * (r () land 63)))
        | 4 -> Read (file ())
        | 5 -> Remove (file ())
        | 6 -> Rename (file (), file ())
        | _ -> Readdir (dir ()))

(* Structural signature of the server's backing store: every node's
   path, kind, and content digest, sorted.  Two runs agree iff their
   surviving trees are identical. *)
let signature (fs : Memfs.t) : string =
  Memfs.fold fs
    (fun acc ~path id ->
      let name = String.concat "/" path in
      let line =
        match Memfs.inode_kind fs id with
        | Some (Memfs.Reg { data; len }) ->
            Printf.sprintf "F %s %d %s" name len (Digest.to_hex (Digest.subbytes data 0 len))
        | Some (Memfs.Dir _) -> "D " ^ name
        | Some (Memfs.Symlink t) -> Printf.sprintf "L %s %s" name t
        | None -> "? " ^ name
      in
      line :: acc)
    []
  |> List.sort compare |> String.concat "\n"

(* --- The empty plan is a no-op --- *)

let test_empty_plan () =
  let ops = ops_of_seed 42 in
  let bare = Stacks.make Stacks.Nfs_udp in
  run_ops bare ops;
  let armed = Stacks.make ~fault:(Fault.none ~seed:"noop") Stacks.Nfs_udp in
  run_ops armed ops;
  Testkit.check_string "identical trees" (signature bare.Stacks.server_fs)
    (signature armed.Stacks.server_fs);
  Alcotest.(check (float 0.0001))
    "identical simulated time"
    (Simclock.now_us bare.Stacks.clock)
    (Simclock.now_us armed.Stacks.clock);
  Testkit.check_string "empty ledger" "" (Fault.ledger armed.Stacks.obs)

(* --- Same seed, byte-identical ledger --- *)

let lossy_spec () =
  Fault.make ~seed:"ledger-det" ~drop_pm:150 ~dup_pm:100 ~delay_pm:400 ~delay_mean_us:2_000
    ~delay_p99_us:20_000 ()

let test_ledger_determinism () =
  let run () =
    let w = Stacks.make ~fault:(lossy_spec ()) Stacks.Sfs in
    run_ops w (ops_of_seed 7);
    (Fault.ledger w.Stacks.obs, signature w.Stacks.server_fs)
  in
  let l1, s1 = run () in
  let l2, s2 = run () in
  Testkit.check_bool "faults actually injected" true (l1 <> "");
  Testkit.check_string "byte-identical ledgers" l1 l2;
  Testkit.check_string "byte-identical trees" s1 s2

(* --- Duplicates are absorbed by the retransmit cache --- *)

let test_retransmit_cache () =
  let w =
    Stacks.make ~fault:(Fault.make ~seed:"dup-heavy" ~dup_pm:2_000 ()) Stacks.Nfs_udp
  in
  run_ops w (ops_of_seed 11);
  Testkit.check_bool "duplicates injected" true (Obs.counter w.Stacks.obs "fault.duplicate" > 0);
  Testkit.check_bool "retransmit cache hit" true
    (Obs.counter w.Stacks.obs "recover.retransmit_hit" > 0);
  (* The duplicate of a CREATE executed once: the tree matches a clean
     run of the same ops. *)
  let clean = Stacks.make Stacks.Nfs_udp in
  run_ops clean (ops_of_seed 11);
  Testkit.check_string "no double execution" (signature clean.Stacks.server_fs)
    (signature w.Stacks.server_fs)

(* --- Crash/restart: leases die, clients reconnect and re-authenticate --- *)

let test_crash_recovery () =
  let w = Stacks.make Stacks.Sfs in
  let now = Simclock.now_us w.Stacks.clock in
  Stacks.arm_faults w
    (Fault.make ~seed:"crash"
       ~crashes:
         [ { Fault.c_host = Stacks.server_location; c_down_us = now +. 1_000.0; c_up_us = now +. 50_000.0 } ]
       ());
  run_ops w [ Mkdir "pre" ];
  Simclock.advance w.Stacks.clock 2_000.0 (* into the outage *);
  run_ops w [ Mkdir "during"; Write ("during/f", "x"); Read "during/f" ];
  Testkit.check_bool "server restarted" true (Obs.counter w.Stacks.obs "recover.server_restart" >= 1);
  Testkit.check_bool "client reconnected" true (Obs.counter w.Stacks.obs "recover.reconnect" > 0);
  Testkit.check_bool "client re-authenticated" true (Obs.counter w.Stacks.obs "recover.reauth" > 0);
  Testkit.check_bool "cache flushed" true (Obs.counter w.Stacks.obs "recover.cache_flush" > 0);
  (* All three ops landed despite the outage. *)
  let s = signature w.Stacks.server_fs in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
    at 0
  in
  Testkit.check_bool "post-crash writes survived" true
    (contains "bench/during" && contains "bench/during/f")

(* --- The oracle property --- *)

(* Derive a whole scenario (stack, rates, optional crash window, ops)
   from one integer.  Corruption is only thrown at SFS stacks: the MAC
   catches it and the client recovers.  On plain NFS corrupted bytes
   can silently change data — the paper's argument, not a bug in the
   harness — so the insecure baseline is only subjected to loss-shaped
   faults it can survive. *)
let scenario_of_seed (seed : int) : Stacks.stack * Fault.spec * op list =
  let r = Testkit.make_rand (seed * 2 + 1) in
  let stack = if r () land 1 = 0 then Stacks.Nfs_udp else Stacks.Sfs in
  let corrupt_pm = if stack = Stacks.Sfs then r () land 127 else 0 in
  let crashes =
    if r () land 3 = 0 then
      let t0 = 5_000.0 +. float_of_int (r () * 100) in
      [ { Fault.c_host = Stacks.server_location; c_down_us = t0; c_up_us = t0 +. 60_000.0 } ]
    else []
  in
  let spec =
    Fault.make
      ~seed:("oracle-" ^ string_of_int seed)
      ~drop_pm:(r () mod 300) ~dup_pm:(r () land 127) ~reorder_pm:(r () land 127) ~corrupt_pm
      ~delay_pm:(r () mod 500) ~delay_mean_us:(500 + (8 * (r ()))) ~delay_p99_us:30_000 ~crashes ()
  in
  (stack, spec, ops_of_seed seed)

let oracle_prop =
  QCheck.Test.make ~count:100 ~name:"faulty run converges to the fault-free oracle"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let stack, spec, ops = scenario_of_seed seed in
      let faulty = Stacks.make ~fault:spec stack in
      run_ops faulty ops;
      let clean = Stacks.make stack in
      run_ops clean ops;
      signature faulty.Stacks.server_fs = signature clean.Stacks.server_fs)

(* --- Pipelining is invisible to correctness (DESIGN.md §11) --- *)

(* Sequential large-file traffic, big enough to trigger readahead runs
   (>= 8 consecutive blocks) and coalesced write-behind gathers on the
   pipelined stacks.  The re-reads hit whatever the prefetcher pulled
   in; the second file's odd tail length exercises the partial last
   block of a gather. *)
let seq_phase (seed : int) : op list =
  let r = Testkit.make_rand (seed + 17) in
  let big = Testkit.rand_string r (12 * 8192) in
  [
    Mkdir "seq";
    Write ("seq/big", big);
    Read "seq/big";
    Write ("seq/odd", String.sub big 0 ((3 * 8192) + 137));
    Read "seq/odd";
  ]

(* The signature reflects the server's tree, so a pipelined client must
   push any write-behind buffer out before we compare.  Faults may make
   the flush itself fail; like the workload, we shrug — convergence of
   the surviving state is what the property asserts. *)
let settle (w : Stacks.world) : unit =
  match w.Stacks.client_cache with
  | None -> ()
  | Some c -> (
      try Cachefs.flush_dirty c
      with Sfs_nfs.Nfs_client.Rpc_failure _ | Sfs_net.Simnet.Timeout -> ())

(* Windowed dispatch, readahead and write-behind re-account *time*;
   they must never change *state*: any pipelined configuration yields a
   server tree byte-identical to the fully serial client's. *)
let pipeline_equiv_prop =
  QCheck.Test.make ~count:60 ~name:"pipelined tree is byte-identical to serial"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Testkit.make_rand (seed + 3) in
      let stack = if r () land 1 = 0 then Stacks.Nfs_udp else Stacks.Sfs in
      let window = [| 2; 4; 16 |].(r () mod 3) in
      let readahead = r () mod 24 in
      let ops = ops_of_seed seed @ seq_phase seed in
      let serial = Stacks.make ~rpc_window:1 ~readahead:0 stack in
      run_ops serial ops;
      let piped = Stacks.make ~rpc_window:window ~readahead stack in
      run_ops piped ops;
      settle piped;
      signature serial.Stacks.server_fs = signature piped.Stacks.server_fs)

(* And the same under fire: the existing oracle fault plans, replayed
   against a pipelined client, still converge to the serial fault-free
   tree — faults cost time, pipelining saves it, neither touches
   correctness. *)
let pipeline_fault_oracle_prop =
  QCheck.Test.make ~count:100
    ~name:"pipelined faulty run converges to the serial fault-free oracle"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let stack, spec, ops = scenario_of_seed seed in
      let ops = ops @ seq_phase seed in
      let faulty = Stacks.make ~fault:spec ~rpc_window:(2 + (seed mod 15)) stack in
      run_ops faulty ops;
      settle faulty;
      let serial = Stacks.make ~rpc_window:1 ~readahead:0 stack in
      run_ops serial ops;
      signature faulty.Stacks.server_fs = signature serial.Stacks.server_fs)

let suite =
  ( "fault",
    [
      Alcotest.test_case "empty plan is a no-op" `Quick test_empty_plan;
      Alcotest.test_case "same-seed ledger determinism" `Quick test_ledger_determinism;
      Alcotest.test_case "retransmit cache absorbs duplicates" `Quick test_retransmit_cache;
      Alcotest.test_case "crash window: reconnect + reauth" `Quick test_crash_recovery;
    ]
    @ Testkit.to_alcotest [ oracle_prop; pipeline_equiv_prop; pipeline_fault_oracle_prop ] )
