module Xdr = Sfs_xdr.Xdr
module Sunrpc = Sfs_xdr.Sunrpc

let test_primitives () =
  let s =
    Xdr.encode
      (fun e () ->
        Xdr.enc_uint32 e 7;
        Xdr.enc_int32 e (-3);
        Xdr.enc_uint64 e 0x1122334455667788L;
        Xdr.enc_bool e true;
        Xdr.enc_string e "hello";
        Xdr.enc_option e Xdr.enc_uint32 (Some 9);
        Xdr.enc_option e Xdr.enc_uint32 None;
        Xdr.enc_array e Xdr.enc_uint32 [ 1; 2; 3 ])
      ()
  in
  match
    Xdr.run s (fun d ->
        let a = Xdr.dec_uint32 d in
        let b = Xdr.dec_int32 d in
        let c = Xdr.dec_uint64 d in
        let t = Xdr.dec_bool d in
        let str = Xdr.dec_string d in
        let o1 = Xdr.dec_option d Xdr.dec_uint32 in
        let o2 = Xdr.dec_option d Xdr.dec_uint32 in
        let l = Xdr.dec_array d Xdr.dec_uint32 in
        (a, b, c, t, str, o1, o2, l))
  with
  | Ok (a, b, c, t, str, o1, o2, l) ->
      Testkit.check_int "uint32" 7 a;
      Testkit.check_int "int32" (-3) b;
      Alcotest.(check int64) "uint64" 0x1122334455667788L c;
      Testkit.check_bool "bool" true t;
      Testkit.check_string "string" "hello" str;
      Alcotest.(check (option int)) "some" (Some 9) o1;
      Alcotest.(check (option int)) "none" None o2;
      Alcotest.(check (list int)) "array" [ 1; 2; 3 ] l
  | Result.Error e -> Alcotest.fail e

let test_padding () =
  (* Opaque data pads to 4-byte multiples. *)
  let s = Xdr.encode Xdr.enc_opaque "abcde" in
  Testkit.check_int "padded length" 12 (String.length s);
  Testkit.check_string "roundtrip" "abcde"
    (match Xdr.run s (fun d -> Xdr.dec_opaque d) with Ok v -> v | Result.Error e -> Alcotest.fail e)

let test_errors () =
  Testkit.check_bool "truncated" true (Result.is_error (Xdr.run "\x00\x00" Xdr.dec_uint32));
  Testkit.check_bool "trailing" true
    (Result.is_error (Xdr.run "\x00\x00\x00\x01\xff\xff\xff\xff" Xdr.dec_uint32));
  Testkit.check_bool "bad bool" true (Result.is_error (Xdr.run "\x00\x00\x00\x07" Xdr.dec_bool));
  (* Oversized opaque length is rejected before allocation. *)
  let huge = Xdr.encode (fun e () -> Xdr.enc_uint32 e 0x40000000) () in
  Testkit.check_bool "bounded opaque" true (Result.is_error (Xdr.run huge (fun d -> Xdr.dec_opaque d)))

let test_sunrpc_roundtrip () =
  let call =
    Sunrpc.Call
      {
        Sunrpc.xid = 42;
        prog = 100003;
        vers = 3;
        proc = 6;
        trace = 0;
        span = 0;
        cred = Sunrpc.Auth_unix { stamp = 1; machine = "client"; uid = 1000; gid = 100; gids = [ 100; 7 ] };
        args = "argbytes";
      }
  in
  (match Sunrpc.msg_of_string (Sunrpc.msg_to_string call) with
  | Ok (Sunrpc.Call c) ->
      Testkit.check_int "xid" 42 c.Sunrpc.xid;
      Testkit.check_int "proc" 6 c.Sunrpc.proc;
      Testkit.check_string "args" "argbytes" c.Sunrpc.args;
      (match c.Sunrpc.cred with
      | Sunrpc.Auth_unix u ->
          Testkit.check_int "uid" 1000 u.uid;
          Alcotest.(check (list int)) "gids" [ 100; 7 ] u.gids
      | Sunrpc.Auth_none -> Alcotest.fail "lost credentials")
  | _ -> Alcotest.fail "call roundtrip");
  let reply = Sunrpc.Reply { Sunrpc.reply_xid = 42; body = Sunrpc.Success "resultbytes" } in
  match Sunrpc.msg_of_string (Sunrpc.msg_to_string reply) with
  | Ok (Sunrpc.Reply r) -> (
      Testkit.check_int "reply xid" 42 r.Sunrpc.reply_xid;
      match r.Sunrpc.body with
      | Sunrpc.Success s -> Testkit.check_string "results" "resultbytes" s
      | _ -> Alcotest.fail "reply body")
  | _ -> Alcotest.fail "reply roundtrip"

let test_sunrpc_errors () =
  List.iter
    (fun body ->
      match Sunrpc.msg_of_string (Sunrpc.msg_to_string (Sunrpc.Reply { Sunrpc.reply_xid = 7; body })) with
      | Ok (Sunrpc.Reply r) -> Testkit.check_bool "body survives" true (r.Sunrpc.body = body)
      | _ -> Alcotest.fail "roundtrip")
    [
      Sunrpc.Prog_unavail;
      Sunrpc.Prog_mismatch (2, 3);
      Sunrpc.Proc_unavail;
      Sunrpc.Garbage_args;
      Sunrpc.System_err;
      Sunrpc.Rejected (Sunrpc.Rpc_mismatch (2, 2));
      Sunrpc.Rejected (Sunrpc.Auth_error 1);
    ]

let test_record_marking () =
  let r = Sunrpc.make_reader () in
  let wire = Sunrpc.record_to_string "first" ^ Sunrpc.record_to_string "second" in
  (* Feed byte by byte to exercise reassembly. *)
  String.iter (fun c -> Sunrpc.reader_feed r (String.make 1 c)) wire;
  Alcotest.(check (option string)) "first" (Some "first") (Sunrpc.reader_next r);
  Alcotest.(check (option string)) "second" (Some "second") (Sunrpc.reader_next r);
  Alcotest.(check (option string)) "drained" None (Sunrpc.reader_next r)

(* Generators for whole Sun RPC messages, exercising every arm of the
   call/reply envelope. *)
let auth_gen =
  let open QCheck.Gen in
  oneof
    [
      return Sunrpc.Auth_none;
      (let* stamp = int_range 0 0xFFFF in
       let* machine = string_size ~gen:printable (int_range 0 20) in
       let* uid = int_range 0 0xFFFF in
       let* gid = int_range 0 0xFFFF in
       let* gids = list_size (int_range 0 8) (int_range 0 0xFFFF) in
       return (Sunrpc.Auth_unix { stamp; machine; uid; gid; gids }));
    ]

let msg_gen =
  let open QCheck.Gen in
  let call =
    let* xid = int_range 0 0xFFFFFFF in
    let* proc = int_range 0 21 in
    let* cred = auth_gen in
    let* args = string_size ~gen:char (int_range 0 64) in
    return (Sunrpc.Call { Sunrpc.xid; prog = 100003; vers = 3; proc; trace = 0; span = 0; cred; args })
  in
  let reply =
    let* reply_xid = int_range 0 0xFFFFFFF in
    let* body =
      oneof
        [
          map (fun s -> Sunrpc.Success s) (string_size ~gen:char (int_range 0 64));
          return Sunrpc.Prog_unavail;
          map2 (fun lo hi -> Sunrpc.Prog_mismatch (lo, hi)) (int_range 0 9) (int_range 0 9);
          return Sunrpc.Proc_unavail;
          return Sunrpc.Garbage_args;
          return Sunrpc.System_err;
          map2
            (fun lo hi -> Sunrpc.Rejected (Sunrpc.Rpc_mismatch (lo, hi)))
            (int_range 0 9) (int_range 0 9);
          map (fun s -> Sunrpc.Rejected (Sunrpc.Auth_error s)) (int_range 0 5);
        ]
    in
    return (Sunrpc.Reply { Sunrpc.reply_xid; body })
  in
  oneof [ call; reply ]

(* A Buffer-based reference encoder (the pre-fast-path implementation):
   the in-place Bytes encoder must produce byte-identical output for
   any mix of items, or every figure in the eval would shift. *)
type xdr_item =
  | X_u32 of int
  | X_i32 of int
  | X_u64 of int64
  | X_bool of bool
  | X_opaque of string
  | X_string of string
  | X_fixed of string

let ref_encode (items : xdr_item list) : string =
  let b = Buffer.create 64 in
  let u32 v =
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (v land 0xff))
  in
  let pad n = for _ = 1 to (4 - (n land 3)) land 3 do Buffer.add_char b '\000' done in
  List.iter
    (fun item ->
      match item with
      | X_u32 v -> u32 v
      | X_i32 v -> u32 (v land 0xFFFFFFFF)
      | X_u64 v ->
          u32 (Int64.to_int (Int64.shift_right_logical v 32));
          u32 (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
      | X_bool v -> u32 (if v then 1 else 0)
      | X_opaque s | X_string s ->
          u32 (String.length s);
          Buffer.add_string b s;
          pad (String.length s)
      | X_fixed s ->
          Buffer.add_string b s;
          pad (String.length s))
    items;
  Buffer.contents b

let enc_item (e : Xdr.enc) (item : xdr_item) : unit =
  match item with
  | X_u32 v -> Xdr.enc_uint32 e v
  | X_i32 v -> Xdr.enc_int32 e v
  | X_u64 v -> Xdr.enc_uint64 e v
  | X_bool v -> Xdr.enc_bool e v
  | X_opaque s -> Xdr.enc_opaque e s
  | X_string s -> Xdr.enc_string e s
  | X_fixed s -> Xdr.enc_fixed_opaque e ~size:(String.length s) s

let item_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun v -> X_u32 v) (int_range 0 0xFFFFFFFF);
      map (fun v -> X_i32 v) (int_range (-0x80000000) 0x7FFFFFFF);
      map (fun v -> X_u64 (Int64.of_int v)) int;
      map (fun v -> X_bool v) bool;
      map (fun s -> X_opaque s) (string_size ~gen:char (int_range 0 40));
      map (fun s -> X_string s) (string_size ~gen:char (int_range 0 40));
      map (fun s -> X_fixed s) (string_size ~gen:char (int_range 0 40));
    ]

let props =
  let open QCheck in
  [
    Test.make ~count:500 ~name:"bytes encoder = buffer reference encoder"
      (make Gen.(list_size (int_range 0 30) item_gen))
      (fun items -> Xdr.encode (fun e () -> List.iter (enc_item e) items) () = ref_encode items);
    (* One encoder reused across calls (the Sun RPC connection pattern)
       must behave exactly like a fresh encoder per call. *)
    Test.make ~count:200 ~name:"encoder reuse via reset = fresh encoder"
      (make Gen.(pair (list_size (int_range 0 20) item_gen) (list_size (int_range 0 20) item_gen)))
      (fun (a, b) ->
        let e = Xdr.make_enc () in
        let with_reuse items =
          Xdr.reset e;
          List.iter (enc_item e) items;
          Xdr.to_string e
        in
        with_reuse a = ref_encode a && with_reuse b = ref_encode b);
    Test.make ~count:300 ~name:"opaque roundtrip" (string_gen Gen.char) (fun s ->
        Xdr.run (Xdr.encode Xdr.enc_opaque s) (fun d -> Xdr.dec_opaque d) = Ok s);
    Test.make ~count:300 ~name:"uint64 roundtrip" (map Int64.of_int int) (fun v ->
        Xdr.run (Xdr.encode Xdr.enc_uint64 v) Xdr.dec_uint64 = Ok v);
    Test.make ~count:300 ~name:"uint32 roundtrip" (int_range 0 0xFFFFFFFF) (fun v ->
        Xdr.run (Xdr.encode Xdr.enc_uint32 v) Xdr.dec_uint32 = Ok v);
    Test.make ~count:300 ~name:"int32 roundtrip" (int_range (-0x80000000) 0x7FFFFFFF) (fun v ->
        Xdr.run (Xdr.encode Xdr.enc_int32 v) Xdr.dec_int32 = Ok v);
    Test.make ~count:100 ~name:"bool roundtrip" bool (fun b ->
        Xdr.run (Xdr.encode Xdr.enc_bool b) Xdr.dec_bool = Ok b);
    Test.make ~count:200 ~name:"fixed opaque roundtrip"
      (string_gen_of_size (Gen.return 20) Gen.char)
      (fun s ->
        Xdr.run
          (Xdr.encode (fun e v -> Xdr.enc_fixed_opaque e ~size:20 v) s)
          (fun d -> Xdr.dec_fixed_opaque d ~size:20)
        = Ok s);
    Test.make ~count:200 ~name:"option roundtrip" (option (int_range 0 0xFFFF)) (fun o ->
        Xdr.run
          (Xdr.encode (fun e v -> Xdr.enc_option e Xdr.enc_uint32 v) o)
          (fun d -> Xdr.dec_option d Xdr.dec_uint32)
        = Ok o);
    Test.make ~count:200 ~name:"string array roundtrip"
      (list (string_gen_of_size (Gen.int_range 0 20) Gen.char))
      (fun l ->
        Xdr.run
          (Xdr.encode (fun e v -> Xdr.enc_array e Xdr.enc_string v) l)
          (fun d -> Xdr.dec_array d (fun d -> Xdr.dec_string d))
        = Ok l);
    (* The whole RPC envelope: encode∘decode = id across every arm. *)
    Test.make ~count:500 ~name:"sunrpc msg roundtrip" (make msg_gen) (fun m ->
        Sunrpc.msg_of_string (Sunrpc.msg_to_string m) = Ok m);
    Test.make ~count:200 ~name:"record marking roundtrip"
      (list (string_gen_of_size (Gen.int_range 0 50) Gen.char))
      (fun records ->
        let r = Sunrpc.make_reader () in
        Sunrpc.reader_feed r (String.concat "" (List.map Sunrpc.record_to_string records));
        let rec drain acc =
          match Sunrpc.reader_next r with Some x -> drain (x :: acc) | None -> List.rev acc
        in
        drain [] = records);
    Test.make ~count:200 ~name:"decoder never crashes on garbage" (string_gen Gen.char) (fun s ->
        match Sunrpc.msg_of_string s with Ok _ | Result.Error _ -> true);
    Test.make ~count:200 ~name:"truncated messages decode to Error, not exceptions"
      (pair (make msg_gen) (int_range 0 200))
      (fun (m, cut) ->
        let wire = Sunrpc.msg_to_string m in
        let cut = min cut (String.length wire) in
        match Sunrpc.msg_of_string (String.sub wire 0 cut) with
        | Ok _ | Result.Error _ -> true);
  ]

let suite =
  ( "xdr",
    [
      Alcotest.test_case "primitives" `Quick test_primitives;
      Alcotest.test_case "padding" `Quick test_padding;
      Alcotest.test_case "malformed input" `Quick test_errors;
      Alcotest.test_case "sunrpc roundtrip" `Quick test_sunrpc_roundtrip;
      Alcotest.test_case "sunrpc error bodies" `Quick test_sunrpc_errors;
      Alcotest.test_case "record marking" `Quick test_record_marking;
    ]
    @ Testkit.to_alcotest props )
