(* Tests for sfs_obs: the deterministic observability layer.

   The contract under test is determinism — two identical op sequences
   (and two identical simulated stack runs) must export byte-identical
   snapshots and JSONL — plus span well-formedness across exceptions,
   and the algebraic laws the histogram and codec lean on. *)

module Obs = Sfs_obs.Obs
module Stacks = Sfs_workload.Stacks

(* A fake clock: tests advance it by hand, like Simclock but local. *)
let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun us -> t := !t +. us)

(* --- spans --- *)

let test_span_nesting () =
  let now, advance = fake_clock () in
  let r = Obs.create ~now_us:now () in
  let obs = Some r in
  Obs.span obs ~cat:"outer" "a" (fun () ->
      advance 10.0;
      Obs.span obs ~cat:"inner" "b" (fun () -> advance 5.0);
      advance 2.0);
  (match Obs.spans r with
  | [ b; a ] ->
      (* Completion order: the inner span closes first. *)
      Alcotest.(check string) "inner name" "b" b.Obs.sp_name;
      Alcotest.(check int) "inner depth" 1 b.Obs.sp_depth;
      Alcotest.(check (float 1e-9)) "inner start" 10.0 b.Obs.sp_start_us;
      Alcotest.(check (float 1e-9)) "inner dur" 5.0 b.Obs.sp_dur_us;
      Alcotest.(check string) "outer name" "a" a.Obs.sp_name;
      Alcotest.(check int) "outer depth" 0 a.Obs.sp_depth;
      Alcotest.(check (float 1e-9)) "outer start" 0.0 a.Obs.sp_start_us;
      Alcotest.(check (float 1e-9)) "outer dur" 17.0 a.Obs.sp_dur_us;
      (* The parent interval contains the child interval. *)
      Alcotest.(check bool) "containment" true
        (a.Obs.sp_start_us <= b.Obs.sp_start_us
        && b.Obs.sp_start_us +. b.Obs.sp_dur_us <= a.Obs.sp_start_us +. a.Obs.sp_dur_us)
  | ss -> Alcotest.failf "expected 2 spans, got %d" (List.length ss));
  Alcotest.(check int) "nothing dropped" 0 (Obs.dropped_spans r)

let test_span_exception () =
  let now, advance = fake_clock () in
  let r = Obs.create ~now_us:now () in
  let obs = Some r in
  (* A raising body still closes its span, and the depth counter
     recovers so later spans are well-formed. *)
  (try
     Obs.span obs ~cat:"c" "boom" (fun () ->
         advance 3.0;
         failwith "boom")
   with Failure _ -> ());
  Obs.span obs ~cat:"c" "after" (fun () -> advance 1.0);
  match Obs.spans r with
  | [ boom; after ] ->
      Alcotest.(check string) "raising span recorded" "boom" boom.Obs.sp_name;
      Alcotest.(check (float 1e-9)) "raising span duration" 3.0 boom.Obs.sp_dur_us;
      Alcotest.(check int) "depth recovered" 0 after.Obs.sp_depth
  | ss -> Alcotest.failf "expected 2 spans, got %d" (List.length ss)

let test_span_cap () =
  let now, _ = fake_clock () in
  let r = Obs.create ~max_spans:3 ~now_us:now () in
  let obs = Some r in
  for _ = 1 to 5 do
    Obs.span obs ~cat:"c" "s" (fun () -> ())
  done;
  Alcotest.(check int) "retained" 3 (List.length (Obs.spans r));
  Alcotest.(check int) "dropped" 2 (Obs.dropped_spans r);
  Alcotest.(check int) "drop counter exported" 2
    (Obs.snap_counter (Obs.snapshot r) "obs.spans_dropped")

(* --- determinism --- *)

(* One arbitrary-but-fixed op sequence against a fresh registry. *)
let scripted_run () =
  let now, advance = fake_clock () in
  let r = Obs.create ~now_us:now () in
  let obs = Some r in
  Obs.incr obs "zeta";
  Obs.add obs "alpha" 3;
  Obs.span obs ~cat:"net" "rpc" (fun () ->
      advance 12.0;
      Obs.observe obs "lat" 12;
      Obs.span ~args:[ ("peer", "s1") ] obs ~cat:"net" "inner" (fun () -> advance 4.0));
  Obs.observe obs "lat" 900;
  Obs.add obs "alpha" 1;
  r

let test_jsonl_determinism () =
  let a = Obs.jsonl (scripted_run ()) in
  let b = Obs.jsonl (scripted_run ()) in
  Alcotest.(check string) "identical op sequences export identical JSONL" a b;
  (* Counters come out sorted regardless of touch order. *)
  let names = List.map fst (Obs.snapshot (scripted_run ())).Obs.snap_counters in
  Alcotest.(check (list string)) "sorted counter names" [ "alpha"; "zeta" ] names

let test_stack_determinism () =
  (* Two identical simulated SFS worlds produce byte-equal exports.
     A tiny workload keeps this fast; it still exercises channel, net,
     nfs, cache and client instrumentation end to end. *)
  let run () =
    let w = Stacks.make Stacks.Sfs in
    Sfs_workload.Driver.write_file w (w.Stacks.workdir ^ "/f") "hello";
    ignore (Sfs_workload.Driver.read_file w (w.Stacks.workdir ^ "/f"));
    w.Stacks.obs
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check string) "jsonl byte-equal" (Obs.jsonl r1) (Obs.jsonl r2);
  Alcotest.(check string) "chrome trace byte-equal"
    (Obs.chrome_trace [ ("sfs", r1) ])
    (Obs.chrome_trace [ ("sfs", r2) ]);
  (* And the instrumentation actually observed traffic. *)
  let snap = Obs.snapshot r1 in
  Alcotest.(check bool) "channel bytes flowed" true
    (Obs.snap_counter snap "channel.client.bytes_out" > 0);
  Alcotest.(check bool) "nfs ops counted" true (Obs.snap_counter snap "nfs.calls" > 0)

let test_chrome_trace_shape () =
  let trace = Obs.chrome_trace [ ("lbl", scripted_run ()) ] in
  let has sub =
    let n = String.length trace and m = String.length sub in
    let rec go i = i + m <= n && (String.sub trace i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "traceEvents array" true (has "{\"traceEvents\":[");
  Alcotest.(check bool) "process metadata" true (has "\"process_name\"");
  Alcotest.(check bool) "label present" true (has "\"lbl\"");
  Alcotest.(check bool) "complete events" true (has "\"ph\":\"X\"");
  Alcotest.(check bool) "span args survive" true (has "\"peer\":\"s1\"")

(* --- QCheck: histogram algebra and counter codec --- *)

let histo_eq (a : Obs.histo_snapshot) (b : Obs.histo_snapshot) : bool =
  a.Obs.hs_count = b.Obs.hs_count && a.Obs.hs_sum = b.Obs.hs_sum
  && a.Obs.hs_buckets = b.Obs.hs_buckets

let obs_list = QCheck.list_of_size (QCheck.Gen.int_bound 40) (QCheck.int_bound 1_000_000)

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"histo_merge commutative" (QCheck.pair obs_list obs_list)
    (fun (xs, ys) ->
      let a = Obs.histo_of_observations xs and b = Obs.histo_of_observations ys in
      histo_eq (Obs.histo_merge a b) (Obs.histo_merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"histo_merge associative"
    (QCheck.triple obs_list obs_list obs_list) (fun (xs, ys, zs) ->
      let a = Obs.histo_of_observations xs
      and b = Obs.histo_of_observations ys
      and c = Obs.histo_of_observations zs in
      histo_eq
        (Obs.histo_merge a (Obs.histo_merge b c))
        (Obs.histo_merge (Obs.histo_merge a b) c))

let prop_merge_models_concat =
  QCheck.Test.make ~count:200 ~name:"histo_merge models list concat"
    (QCheck.pair obs_list obs_list) (fun (xs, ys) ->
      histo_eq
        (Obs.histo_merge (Obs.histo_of_observations xs) (Obs.histo_of_observations ys))
        (Obs.histo_of_observations (xs @ ys)))

let counter_name =
  (* Printable names, including chars the JSON codec must escape. *)
  QCheck.string_gen_of_size (QCheck.Gen.int_range 1 12)
    (QCheck.Gen.oneof
       [
         QCheck.Gen.char_range 'a' 'z';
         QCheck.Gen.oneofl [ '.'; '_'; '"'; '\\'; ' '; '/' ];
       ])

let prop_counter_roundtrip =
  QCheck.Test.make ~count:200 ~name:"counter JSONL round-trip"
    (QCheck.list_of_size (QCheck.Gen.int_bound 20)
       (QCheck.pair counter_name (QCheck.int_bound 1_000_000_000)))
    (fun pairs ->
      let now, _ = fake_clock () in
      let r = Obs.create ~now_us:now () in
      let obs = Some r in
      List.iter (fun (name, v) -> Obs.add obs name v) pairs;
      let expected = (Obs.snapshot r).Obs.snap_counters in
      Obs.counters_of_jsonl (Obs.jsonl r) = expected)

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span closes across exceptions" `Quick test_span_exception;
      Alcotest.test_case "span cap and drop counter" `Quick test_span_cap;
      Alcotest.test_case "jsonl determinism" `Quick test_jsonl_determinism;
      Alcotest.test_case "stack run determinism" `Quick test_stack_determinism;
      Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
      QCheck_alcotest.to_alcotest prop_merge_commutative;
      QCheck_alcotest.to_alcotest prop_merge_associative;
      QCheck_alcotest.to_alcotest prop_merge_models_concat;
      QCheck_alcotest.to_alcotest prop_counter_roundtrip;
    ] )
