(* sfstaint self-tests: a fixture mini-project fed through the
   whole-program analysis as in-memory (path, source) pairs.

   The fixture exercises the detection matrix the tool exists for:
   a direct source→sink leak, a leak through a helper call (summary
   substitution), a leak through an annotated record field (projection
   re-tainting), a declassified non-leak, and a waived leak — plus the
   determinism contract the committed taint-report.json drift gate
   relies on: byte-identical reports across runs and across input file
   orderings. *)

module Taint = Sfstaint_core.Taint

(* --- the fixture mini-project --- *)

let fx_mli =
  {|type t = { id : string; secret_part : string [@sfs.secret] }

val make_key : unit -> string [@@sfs.secret]
val send : string -> unit [@@sfs.sink "wire"]
val seal : string -> string [@@sfs.declassify "fixture seal boundary; output is ciphertext"]
|}

let leak_direct = "let run () = Fx.send (Fx.make_key ())\n"

let leak_helper = "let helper k = Fx.send k\nlet run () = helper (Fx.make_key ())\n"

let leak_field = "let run t = Fx.send t.Fx.secret_part\n"

let ok_sealed = "let run () = Fx.send (Fx.seal (Fx.make_key ()))\n"

let waived =
  "let run () =\n\
  \  (* sfstaint: allow TNT001 — fixture waiver exercising the pragma machinery *)\n\
  \  Fx.send (Fx.make_key ())\n"

let intfs = [ ("lib/fx/fx.mli", fx_mli) ]

let impls =
  [
    ("lib/fx/leak_direct.ml", leak_direct);
    ("lib/fx/leak_helper.ml", leak_helper);
    ("lib/fx/leak_field.ml", leak_field);
    ("lib/fx/ok_sealed.ml", ok_sealed);
    ("lib/fx/waived.ml", waived);
  ]

let run_fixture () =
  match Taint.analyze ~intfs ~impls () with
  | Ok r -> r
  | Error msg -> Alcotest.failf "fixture analysis failed: %s" msg

(* --- exact findings --- *)

let test_findings () =
  let r = run_fixture () in
  Alcotest.(check int) "files analyzed" 6 r.Taint.r_files;
  Alcotest.(check (list string))
    "secret sources" [ "Fx.make_key"; "Fx.secret_part" ] r.Taint.r_sources;
  Alcotest.(check int) "no diagnostics" 0 (List.length r.Taint.r_diags);
  Alcotest.(check int) "four flows in total" 4 (List.length r.Taint.r_flows);
  let unwaived = Taint.unwaived r in
  Alcotest.(check int) "three unwaived flows" 3 (List.length unwaived);
  let sorted = List.sort Taint.compare_flow unwaived in
  let summary f =
    Printf.sprintf "%s %s %s -> %s" f.Taint.f_file f.Taint.f_code f.Taint.f_source
      f.Taint.f_sink
  in
  Alcotest.(check (list string))
    "unwaived flows: direct, field-projected, transitive"
    [
      "lib/fx/leak_direct.ml TNT001 Fx.make_key -> Fx.send";
      "lib/fx/leak_field.ml TNT001 Fx.secret_part -> Fx.send";
      "lib/fx/leak_helper.ml TNT001 Fx.make_key -> Fx.send";
    ]
    (List.map summary sorted);
  List.iter
    (fun f -> Alcotest.(check string) "wire sink kind" "wire" f.Taint.f_kind)
    sorted

let test_transitive_chain () =
  let r = run_fixture () in
  let f =
    List.find (fun f -> f.Taint.f_file = "lib/fx/leak_helper.ml") (Taint.unwaived r)
  in
  (* The report carries the full call chain, not just the endpoints:
     run calls helper, helper hands the key to the sink. *)
  Alcotest.(check bool) "chain has at least two frames" true (List.length f.Taint.f_chain >= 2);
  Alcotest.(check bool) "chain passes through the helper" true
    (List.exists (fun fr -> fr.Taint.fr_callee = "Leak_helper.helper") f.Taint.f_chain);
  Alcotest.(check string) "chain ends at the sink" "Fx.send"
    (List.nth f.Taint.f_chain (List.length f.Taint.f_chain - 1)).Taint.fr_callee

let test_declassified_and_waived () =
  let r = run_fixture () in
  Alcotest.(check bool) "sealed path produces no flow" true
    (not (List.exists (fun f -> f.Taint.f_file = "lib/fx/ok_sealed.ml") r.Taint.r_flows));
  match List.filter (fun f -> f.Taint.f_waived) r.Taint.r_flows with
  | [ f ] ->
      Alcotest.(check string) "waived flow is the pragma'd file" "lib/fx/waived.ml"
        f.Taint.f_file;
      Alcotest.(check bool) "waiver carries its justification" true
        (String.length f.Taint.f_reason > 0)
  | fs -> Alcotest.failf "expected exactly one waived flow, got %d" (List.length fs)

(* --- determinism --- *)

let test_report_reproducible () =
  let j1 = Taint.report_json (run_fixture ()) in
  let j2 = Taint.report_json (run_fixture ()) in
  Alcotest.(check string) "two runs render byte-identical reports" j1 j2

(* Shuffle a list with a QCheck-supplied key stream: swap slot i with
   slot (k mod n) for each key.  Any permutation of the input files
   must produce the same report — the drift gate depends on it. *)
let permute (keys : int list) (xs : 'a list) : 'a list =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n > 1 then
    List.iteri
      (fun i k ->
        let a = i mod n and b = abs k mod n in
        let t = arr.(a) in
        arr.(a) <- arr.(b);
        arr.(b) <- t)
      keys;
  Array.to_list arr

let prop_order_invariant =
  QCheck.Test.make ~count:30 ~name:"report invariant under input file order"
    QCheck.(pair (list int) (list int))
    (fun (ik, mk) ->
      let reference = Taint.report_json (run_fixture ()) in
      match Taint.analyze ~intfs:(permute ik intfs) ~impls:(permute mk impls) () with
      | Error _ -> false
      | Ok r -> String.equal (Taint.report_json r) reference)

let suite =
  ( "taint",
    [
      Alcotest.test_case "fixture findings" `Quick test_findings;
      Alcotest.test_case "transitive chain shape" `Quick test_transitive_chain;
      Alcotest.test_case "declassified and waived" `Quick test_declassified_and_waived;
      Alcotest.test_case "report reproducibility" `Quick test_report_reproducible;
      QCheck_alcotest.to_alcotest prop_order_invariant;
    ] )
