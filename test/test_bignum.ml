open Sfs_bignum

let n = Nat.of_string
let check_nat msg a b = Alcotest.(check string) msg (Nat.to_string a) (Nat.to_string b)

let test_basic_arith () =
  check_nat "add" (n "579") (Nat.add (n "123") (n "456"));
  check_nat "sub" (n "333") (Nat.sub (n "456") (n "123"));
  check_nat "mul" (n "56088") (Nat.mul (n "123") (n "456"));
  check_nat "big mul"
    (n "121932631137021795226185032733622923332237463801111263526900")
    (Nat.mul (n "123456789012345678901234567890") (n "987654321098765432109876543210"));
  let q, r = Nat.divmod (n "1000000007") (n "97") in
  check_nat "div" (n "10309278") q;
  check_nat "rem" (n "41") r

let test_conversions () =
  check_nat "of_int" (n "123456789") (Nat.of_int 123456789);
  Alcotest.(check (option int)) "to_int" (Some 42) (Nat.to_int_opt (n "42"));
  Alcotest.(check (option int)) "to_int big" None (Nat.to_int_opt (n "123456789123456789123456789"));
  check_nat "bytes rt" (n "65536") (Nat.of_bytes_be (Nat.to_bytes_be (n "65536")));
  Alcotest.(check string) "to_bytes" "\x01\x00\x00" (Nat.to_bytes_be (n "65536"));
  Alcotest.(check string) "padded" "\x00\x01\x00\x00" (Nat.to_bytes_be_padded ~width:4 (n "65536"));
  Alcotest.(check string) "hex" "10000" (Nat.to_hex (n "65536"));
  check_nat "of_hex" (n "65536") (Nat.of_hex "10000");
  Alcotest.(check string) "zero bytes" "" (Nat.to_bytes_be Nat.zero);
  Alcotest.(check string) "zero decimal" "0" (Nat.to_string Nat.zero)

let test_bits () =
  Testkit.check_int "num_bits 0" 0 (Nat.num_bits Nat.zero);
  Testkit.check_int "num_bits 1" 1 (Nat.num_bits Nat.one);
  Testkit.check_int "num_bits 255" 8 (Nat.num_bits (n "255"));
  Testkit.check_int "num_bits 256" 9 (Nat.num_bits (n "256"));
  Testkit.check_bool "testbit" true (Nat.testbit (n "4") 2);
  Testkit.check_bool "testbit off" false (Nat.testbit (n "4") 1);
  check_nat "shl" (n "1024") (Nat.shift_left Nat.one 10);
  check_nat "shr" (n "1") (Nat.shift_right (n "1024") 10);
  check_nat "shr to zero" Nat.zero (Nat.shift_right (n "1024") 11)

let test_modexp () =
  (* 2^10 mod 1000 = 24 *)
  check_nat "small" (n "24") (Nat.modexp ~base:Nat.two ~exp:(n "10") ~modulus:(n "1000"));
  (* Fermat: a^(p-1) = 1 mod p *)
  let p = n "1000000007" in
  check_nat "fermat" Nat.one (Nat.modexp ~base:(n "123456") ~exp:(Nat.sub p Nat.one) ~modulus:p);
  check_nat "mod 1" Nat.zero (Nat.modexp ~base:(n "5") ~exp:(n "5") ~modulus:Nat.one)

(* Regression for the divmod quotient-digit walk-down (the qhat
   correction loop is now a constant number of O(n) subtractions, not a
   re-multiplication per retry).  Runs of all-ones limbs over divisors
   just above a power of two force the estimate to overshoot maximally;
   the Euclidean identity is a complete correctness check. *)
let test_divmod_qhat () =
  let ones k = Nat.sub (Nat.shift_left Nat.one k) Nat.one in
  let cases =
    [
      (ones 512, Nat.add (Nat.shift_left Nat.one 256) Nat.one);
      (ones 512, ones 256);
      (ones 1024, Nat.add (Nat.shift_left Nat.one 100) (Nat.of_int 12345));
      (Nat.shift_left Nat.one 511, Nat.add (Nat.shift_left Nat.one 255) Nat.one);
      (Nat.add (Nat.shift_left (ones 256) 256) (Nat.of_int 7), Nat.add (ones 256) Nat.one);
      (ones 960, Nat.add (ones 320) Nat.two);
    ]
  in
  List.iter
    (fun (a, b) ->
      let q, r = Nat.divmod a b in
      Testkit.check_bool "a = q*b + r" true (Nat.equal a (Nat.add (Nat.mul q b) r));
      Testkit.check_bool "r < b" true (Nat.compare r b < 0))
    cases

let test_gcd () =
  check_nat "gcd" (n "6") (Nat.gcd (n "48") (n "18"));
  check_nat "gcd coprime" Nat.one (Nat.gcd (n "17") (n "31"));
  check_nat "gcd zero" (n "5") (Nat.gcd (n "5") Nat.zero)

let test_inverse () =
  (match Modarith.inverse ~x:(n "3") ~modulus:(n "7") with
  | Some v -> check_nat "3^-1 mod 7" (n "5") v
  | None -> Alcotest.fail "expected inverse");
  Alcotest.(check bool) "no inverse" true (Modarith.inverse ~x:(n "6") ~modulus:(n "9") = None);
  (* inverse(x) * x = 1 for a big prime modulus *)
  let p = n "170141183460469231731687303715884105727" (* 2^127 - 1, prime *) in
  let x = n "123456789123456789123456789" in
  match Modarith.inverse ~x ~modulus:p with
  | Some v -> check_nat "big inverse" Nat.one (Modarith.mulmod v x p)
  | None -> Alcotest.fail "expected big inverse"

let test_jacobi () =
  (* Squares have symbol 1 mod a prime; known non-residues -1. *)
  let p = n "23" in
  Testkit.check_int "square" 1 (Modarith.jacobi (n "2") p);
  Testkit.check_int "nonresidue" (-1) (Modarith.jacobi (n "5") p);
  Testkit.check_int "zero" 0 (Modarith.jacobi (n "23") p);
  Testkit.check_int "jacobi(1/9)" 1 (Modarith.jacobi Nat.one (n "9"))

let test_sqrt () =
  let p = n "1000000007" in
  (* p mod 4 = 3 *)
  let x = Modarith.mulmod (n "98765") (n "98765") p in
  (match Modarith.sqrt_3mod4 ~x ~p with
  | Some r -> check_nat "sqrt squared" x (Modarith.mulmod r r p)
  | None -> Alcotest.fail "expected sqrt");
  (* A non-residue must be rejected. *)
  let rec find_nonresidue c =
    if Modarith.jacobi (n (string_of_int c)) p = -1 then n (string_of_int c) else find_nonresidue (c + 1)
  in
  Alcotest.(check bool) "nonresidue rejected" true (Modarith.sqrt_3mod4 ~x:(find_nonresidue 2) ~p = None)

let test_crt () =
  let x = Modarith.crt ~r1:(n "2") ~m1:(n "3") ~r2:(n "3") ~m2:(n "5") in
  check_nat "crt" (n "8") x

let test_primality () =
  let rand_bits = Testkit.rand_bits_fn 1 in
  let prime_p s = Prime.is_probably_prime ~rand_bits (n s) in
  Testkit.check_bool "17" true (prime_p "17");
  Testkit.check_bool "1" false (prime_p "1");
  Testkit.check_bool "561 (Carmichael)" false (prime_p "561");
  Testkit.check_bool "2^127-1" true (prime_p "170141183460469231731687303715884105727");
  Testkit.check_bool "2^128+1" false (prime_p "340282366920938463463374607431768211457");
  Testkit.check_bool "even" false (prime_p "1000000008")

let test_generation () =
  let rand_bits = Testkit.rand_bits_fn 7 in
  let p = Prime.generate ~rand_bits 128 in
  Testkit.check_int "width" 128 (Nat.num_bits p);
  Testkit.check_bool "prime" true (Prime.is_probably_prime ~rand_bits p);
  (* Rabin congruences *)
  let p3 = Prime.generate ~congruence:(3, 8) ~rand_bits 96 in
  Alcotest.(check (option int)) "p mod 8 = 3" (Some 3) (Nat.to_int_opt (Nat.rem p3 (Nat.of_int 8)));
  let p7 = Prime.generate ~congruence:(7, 8) ~rand_bits 96 in
  Alcotest.(check (option int)) "q mod 8 = 7" (Some 7) (Nat.to_int_opt (Nat.rem p7 (Nat.of_int 8)))

(* Property tests: arithmetic laws on random values. *)
let nat_gen =
  let open QCheck.Gen in
  map (fun s -> Nat.of_bytes_be s) (string_size ~gen:char (int_range 0 40))

let nat_arb = QCheck.make ~print:Nat.to_string nat_gen

let nonzero_arb =
  QCheck.make ~print:Nat.to_string
    (QCheck.Gen.map (fun x -> Nat.add x Nat.one) nat_gen)

(* Wider operands (up to ~560 bits) so modexp's sliding window opens
   past one bit and multiplication crosses the Karatsuba threshold. *)
let wide_gen =
  let open QCheck.Gen in
  map (fun s -> Nat.of_bytes_be s) (string_size ~gen:char (int_range 0 70))

let wide_arb = QCheck.make ~print:Nat.to_string wide_gen

let wide_nonzero_arb =
  QCheck.make ~print:Nat.to_string (QCheck.Gen.map (fun x -> Nat.add x Nat.one) wide_gen)

let props =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"add commutative" (pair nat_arb nat_arb) (fun (a, b) ->
        Nat.equal (Nat.add a b) (Nat.add b a));
    Test.make ~count:300 ~name:"add associative" (triple nat_arb nat_arb nat_arb) (fun (a, b, c) ->
        Nat.equal (Nat.add (Nat.add a b) c) (Nat.add a (Nat.add b c)));
    Test.make ~count:300 ~name:"mul commutative" (pair nat_arb nat_arb) (fun (a, b) ->
        Nat.equal (Nat.mul a b) (Nat.mul b a));
    Test.make ~count:100 ~name:"mul associative" (triple nat_arb nat_arb nat_arb) (fun (a, b, c) ->
        Nat.equal (Nat.mul (Nat.mul a b) c) (Nat.mul a (Nat.mul b c)));
    Test.make ~count:300 ~name:"distributive" (triple nat_arb nat_arb nat_arb) (fun (a, b, c) ->
        Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)));
    Test.make ~count:300 ~name:"sub inverts add" (pair nat_arb nat_arb) (fun (a, b) ->
        Nat.equal (Nat.sub (Nat.add a b) b) a);
    Test.make ~count:300 ~name:"divmod identity" (pair nat_arb nonzero_arb) (fun (a, b) ->
        let q, r = Nat.divmod a b in
        Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.compare r b < 0);
    Test.make ~count:300 ~name:"bytes roundtrip" nat_arb (fun a ->
        Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)));
    Test.make ~count:300 ~name:"decimal roundtrip" nat_arb (fun a ->
        Nat.equal a (Nat.of_string (Nat.to_string a)));
    Test.make ~count:300 ~name:"shift inverse" (pair nat_arb (int_range 0 100)) (fun (a, k) ->
        Nat.equal a (Nat.shift_right (Nat.shift_left a k) k));
    Test.make ~count:300 ~name:"shift_left is mul by 2^k" (pair nat_arb (int_range 0 64)) (fun (a, k) ->
        Nat.equal (Nat.shift_left a k) (Nat.mul a (Nat.modexp ~base:Nat.two ~exp:(Nat.of_int k) ~modulus:(Nat.shift_left Nat.one 128))));
    Test.make ~count:100 ~name:"karatsuba agrees with schoolbook sizes"
      (pair (QCheck.make (QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.int_range 100 200)))
         (QCheck.make (QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.int_range 100 200))))
      (fun (sa, sb) ->
        let a = Nat.of_bytes_be sa and b = Nat.of_bytes_be sb in
        (* (a+1)(b+1) = ab + a + b + 1 exercises the Karatsuba path. *)
        let a1 = Nat.add a Nat.one and b1 = Nat.add b Nat.one in
        Nat.equal (Nat.mul a1 b1) (Nat.add (Nat.add (Nat.mul a b) (Nat.add a b)) Nat.one));
    Test.make ~count:50 ~name:"modexp multiplicative" (triple nat_arb nat_arb nonzero_arb)
      (fun (a, b, m) ->
        let m = Nat.add m Nat.one in
        let e = Nat.of_int 13 in
        Nat.equal
          (Nat.modexp ~base:(Nat.mul a b) ~exp:e ~modulus:m)
          (Nat.rem (Nat.mul (Nat.modexp ~base:a ~exp:e ~modulus:m) (Nat.modexp ~base:b ~exp:e ~modulus:m)) m));
    Test.make ~count:200 ~name:"gcd divides both" (pair nonzero_arb nonzero_arb) (fun (a, b) ->
        let g = Nat.gcd a b in
        Nat.is_zero (Nat.rem a g) && Nat.is_zero (Nat.rem b g));
    (* Montgomery fast path vs the retained reference ladder.  Wide
       operands so the sliding window actually widens past 1 bit; the
       modulus parity is whatever falls out of the generator, covering
       both the REDC path (odd) and the reference fallback (even). *)
    Test.make ~count:200 ~name:"montgomery modexp agrees with reference"
      (triple wide_arb wide_arb wide_nonzero_arb) (fun (b, e, m) ->
        Nat.equal (Nat.modexp ~base:b ~exp:e ~modulus:m)
          (Nat.modexp_reference ~base:b ~exp:e ~modulus:m));
    Test.make ~count:100 ~name:"montgomery modexp agrees on even modulus"
      (triple wide_arb wide_arb wide_nonzero_arb) (fun (b, e, m) ->
        let m = Nat.mul m Nat.two in
        Nat.equal (Nat.modexp ~base:b ~exp:e ~modulus:m)
          (Nat.modexp_reference ~base:b ~exp:e ~modulus:m));
    Test.make ~count:100 ~name:"montgomery modexp edge exponents" (pair wide_arb wide_nonzero_arb)
      (fun (b, m) ->
        Nat.equal (Nat.modexp ~base:b ~exp:Nat.zero ~modulus:m)
          (Nat.modexp_reference ~base:b ~exp:Nat.zero ~modulus:m)
        && Nat.equal (Nat.modexp ~base:b ~exp:Nat.one ~modulus:m)
             (Nat.modexp_reference ~base:b ~exp:Nat.one ~modulus:m)
        && Nat.equal (Nat.modexp ~base:b ~exp:b ~modulus:Nat.one)
             (Nat.modexp_reference ~base:b ~exp:b ~modulus:Nat.one));
    (* Karatsuba vs schoolbook, directly: operands wide enough to split
       (and recurse) against products small enough to stay schoolbook,
       cross-checked through the distributive law with single-limb
       factors that cannot themselves take the Karatsuba path. *)
    Test.make ~count:100 ~name:"karatsuba agrees with schoolbook directly"
      (triple wide_arb wide_arb (int_range 1 1000)) (fun (a, b, k) ->
        let kn = Nat.of_int k in
        (* (a*k)*b uses schoolbook for a*k (tiny limb count) and
           Karatsuba for the wide product; a*(k*b) associates the other
           way.  Equality pins both against each other. *)
        Nat.equal (Nat.mul (Nat.mul a kn) b) (Nat.mul a (Nat.mul kn b)));
  ]

let suite =
  ( "bignum",
    [
      Alcotest.test_case "basic arithmetic" `Quick test_basic_arith;
      Alcotest.test_case "conversions" `Quick test_conversions;
      Alcotest.test_case "bit operations" `Quick test_bits;
      Alcotest.test_case "modexp" `Quick test_modexp;
      Alcotest.test_case "divmod qhat walk-down" `Quick test_divmod_qhat;
      Alcotest.test_case "gcd" `Quick test_gcd;
      Alcotest.test_case "modular inverse" `Quick test_inverse;
      Alcotest.test_case "jacobi symbol" `Quick test_jacobi;
      Alcotest.test_case "modular sqrt" `Quick test_sqrt;
      Alcotest.test_case "crt" `Quick test_crt;
      Alcotest.test_case "primality" `Quick test_primality;
      Alcotest.test_case "prime generation" `Slow test_generation;
    ]
    @ Testkit.to_alcotest props )
