(* Self-tests for the sfslint rule engine (tools/sfslint).

   Every shipped rule gets the same treatment: a known-bad snippet
   fires, a known-good snippet stays silent, and a pragma comment
   suppresses the diagnostic.  Snippets only have to parse — the
   linter never typechecks — so they reference modules freely. *)

module Lint = Sfslint_core.Lint

let check ?enabled ~path src =
  match Lint.check_source ?enabled ~path ~source:src () with
  | Ok ds -> ds
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let codes ?enabled ~path src = List.map (fun d -> d.Lint.code) (check ?enabled ~path src)

let fires msg ~path ~code src =
  Alcotest.(check bool) (msg ^ " fires") true (List.mem code (codes ~path src))

let silent msg ~path ~code src =
  Alcotest.(check bool) (msg ^ " silent") false (List.mem code (codes ~path src))

let test_sl001 () =
  fires "= on mac tag" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "let verify ~key ~tag msg = tag = hmac ~key msg";
  fires "<> on digest field" ~path:"lib/core/readonly.ml" ~code:"SL001"
    "let changed a b = a.root_hash <> b.root_hash";
  fires "String.equal" ~path:"lib/proto/hostid.ml" ~code:"SL001"
    "let check a b = String.equal a b";
  fires "Bytes.compare" ~path:"lib/core/x.ml" ~code:"SL001" "let f a b = Bytes.compare a b";
  fires "compare against long literal" ~path:"lib/proto/x.ml" ~code:"SL001"
    {|let f s = s = "0123456789abcdef"|};
  silent "ct_equal" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "let verify ~key ~tag msg = Sfs_util.Bytesutil.ct_equal tag (hmac ~key msg)";
  silent "short public token" ~path:"lib/core/vfs.ml" ~code:"SL001"
    {|let keep c = c <> "."|};
  silent "no secret-shaped operand" ~path:"lib/core/vfs.ml" ~code:"SL001" "let f a b = a = b";
  silent "outside restricted dirs" ~path:"lib/nfs/nfs_types.ml" ~code:"SL001"
    "let verify ~key ~tag msg = tag = hmac ~key msg";
  (* The diagnostic carries a usable span. *)
  match check ~path:"lib/crypto/mac.ml" "let a = 1\nlet bad ~tag x = tag = x" with
  | [ d ] ->
      Alcotest.(check string) "code" "SL001" d.Lint.code;
      Alcotest.(check int) "line" 2 d.Lint.line
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_sl001_pragma () =
  silent "pragma above" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "(* sfslint: allow SL001 — test fixture comparing public tags *)\nlet f ~tag x = tag = x";
  silent "pragma same line" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "let f ~tag x = tag = x (* sfslint: allow SL001 — public tag *)";
  (* A pragma for a different rule does not suppress. *)
  fires "wrong-code pragma" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "(* sfslint: allow SL002 — wrong rule *)\nlet f ~tag x = tag = x";
  (* A pragma two lines up does not suppress. *)
  fires "distant pragma" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "(* sfslint: allow SL001 — too far away *)\nlet a = 1\nlet f ~tag x = tag = x"

let test_sl002 () =
  fires "Random.int" ~path:"lib/core/agent.ml" ~code:"SL002" "let x = Random.int 10";
  fires "Random.State" ~path:"lib/workload/driver.ml" ~code:"SL002"
    "let s = Random.State.make_self_init ()";
  fires "Stdlib-qualified" ~path:"lib/net/simnet.ml" ~code:"SL002" "let x = Stdlib.Random.bits ()";
  silent "inside prng.ml" ~path:"lib/crypto/prng.ml" ~code:"SL002"
    "let s = Random.State.make_self_init ()";
  silent "seeded prng" ~path:"lib/core/agent.ml" ~code:"SL002"
    "let x rng = Prng.random_int rng 10";
  silent "pragma" ~path:"lib/core/agent.ml" ~code:"SL002"
    "(* sfslint: allow SL002 — jitter for a non-protocol heuristic *)\nlet x = Random.int 10"

let test_sl003 () =
  fires "gettimeofday" ~path:"lib/net/simnet.ml" ~code:"SL003"
    "let now () = Unix.gettimeofday ()";
  fires "Sys.time" ~path:"lib/crypto/prng.ml" ~code:"SL003" "let t = Sys.time ()";
  fires "Unix.time" ~path:"lib/nfs/memfs.ml" ~code:"SL003" "let t = Unix.time ()";
  silent "inside simclock.ml" ~path:"lib/net/simclock.ml" ~code:"SL003"
    "let now () = Unix.gettimeofday ()";
  silent "simulated clock" ~path:"lib/net/simnet.ml" ~code:"SL003"
    "let now clock = Simclock.now_us clock";
  silent "pragma" ~path:"lib/net/simnet.ml" ~code:"SL003"
    "(* sfslint: allow SL003 — wall clock for log timestamps only *)\nlet now () = Unix.time ()"

let test_sl004 () =
  fires "failwith in dec_" ~path:"lib/xdr/sunrpc.ml" ~code:"SL004"
    {|let dec_thing d = failwith "bad"|};
  fires "invalid_arg in decode" ~path:"lib/proto/keyneg.ml" ~code:"SL004"
    {|let decode_req s = invalid_arg "nope"|};
  fires "raise in parse_" ~path:"lib/proto/channel.ml" ~code:"SL004"
    "let parse_hdr s = raise Exit";
  fires "raise in _of_string" ~path:"lib/proto/authproto.ml" ~code:"SL004"
    "let thing_of_string s = raise Not_found";
  fires "nested helper inherits decoder scope" ~path:"lib/xdr/xdr.ml" ~code:"SL004"
    {|let dec_outer d = let helper x = failwith "inner" in helper d|};
  silent "Xdr.error is the sanctioned path" ~path:"lib/proto/keyneg.ml" ~code:"SL004"
    {|let dec_thing d = Xdr.error "bad tag %d" 3|};
  silent "encoder may guard" ~path:"lib/xdr/sunrpc.ml" ~code:"SL004"
    {|let enc_thing e = invalid_arg "too large"|};
  silent "outside xdr/proto" ~path:"lib/core/sfskey.ml" ~code:"SL004"
    {|let dec_thing d = failwith "bad"|};
  silent "pragma" ~path:"lib/xdr/sunrpc.ml" ~code:"SL004"
    {|let dec_thing d = (* sfslint: allow SL004 — unreachable: length checked above *) failwith "bad"|}

let test_sl005 () =
  fires "toplevel Hashtbl" ~path:"lib/core/authserv.ml" ~code:"SL005"
    "let table = Hashtbl.create 16";
  fires "toplevel ref" ~path:"lib/workload/report.ml" ~code:"SL005" "let counter = ref 0";
  fires "toplevel Buffer under constraint" ~path:"lib/util/hex.ml" ~code:"SL005"
    "let buf : Buffer.t = Buffer.create 64";
  fires "toplevel in nested module" ~path:"lib/core/server.ml" ~code:"SL005"
    "module Cache = struct let slots = Array.make 8 None end";
  silent "constructed inside a function" ~path:"lib/core/authserv.ml" ~code:"SL005"
    "let make () = Hashtbl.create 16";
  silent "constant table literal" ~path:"lib/crypto/blowfish.ml" ~code:"SL005"
    "let tbl = [| 1; 2; 3 |]";
  silent "expression-level let" ~path:"lib/bignum/nat.ml" ~code:"SL005"
    "let f x = let acc = ref 0 in acc := x; !acc";
  silent "pragma" ~path:"lib/core/authserv.ml" ~code:"SL005"
    "(* sfslint: allow SL005 — registry is process-wide by design *)\nlet table = Hashtbl.create 16"

let test_sl006 () =
  fires "Obj.magic" ~path:"lib/workload/compile.ml" ~code:"SL006" "let f x = Obj.magic x";
  fires "Marshal" ~path:"lib/nfs/cachefs.ml" ~code:"SL006"
    "let save x = Marshal.to_string x []";
  silent "typed codec" ~path:"lib/nfs/cachefs.ml" ~code:"SL006"
    "let save x = Xdr.encode enc_thing x";
  silent "pragma" ~path:"lib/workload/compile.ml" ~code:"SL006"
    "(* sfslint: allow SL006 — benchmarking allocator behavior *)\nlet f x = Obj.magic x"

let test_sl007 () =
  let missing ~path ~has_mli ~source =
    Lint.missing_interface ~path ~source ~has_mli () <> None
  in
  Alcotest.(check bool) "fires without mli" true
    (missing ~path:"lib/nfs/nfs_types.ml" ~has_mli:false ~source:"let x = 1");
  Alcotest.(check bool) "silent with mli" false
    (missing ~path:"lib/nfs/nfs_types.ml" ~has_mli:true ~source:"let x = 1");
  Alcotest.(check bool) "outside lib" false
    (missing ~path:"tools/sfslint/main.ml" ~has_mli:false ~source:"let x = 1");
  Alcotest.(check bool) "pragma anywhere in file" false
    (missing ~path:"lib/nfs/nfs_types.ml" ~has_mli:false
       ~source:"let x = 1\n(* sfslint: allow SL007 — generated stub, interface pending *)")

let test_sl008 () =
  fires "print_endline" ~path:"lib/core/client.ml" ~code:"SL008"
    {|let f () = print_endline "mounted"|};
  fires "Printf.printf" ~path:"lib/nfs/cachefs.ml" ~code:"SL008"
    {|let f n = Printf.printf "hits: %d\n" n|};
  fires "Format.printf" ~path:"lib/workload/report.ml" ~code:"SL008"
    {|let f n = Format.printf "%d@." n|};
  fires "print_string" ~path:"lib/obs/obs.ml" ~code:"SL008"
    {|let f s = print_string s|};
  silent "sprintf returns a string" ~path:"lib/workload/report.ml" ~code:"SL008"
    {|let f n = Printf.sprintf "hits: %d" n|};
  silent "Buffer-based rendering" ~path:"lib/obs/obs.ml" ~code:"SL008"
    "let f b s = Buffer.add_string b s";
  silent "outside lib" ~path:"bench/main.ml" ~code:"SL008"
    {|let f () = print_endline "ok"|};
  silent "outside lib (tools)" ~path:"tools/sfslint/main.ml" ~code:"SL008"
    {|let f d = Printf.printf "%s\n" d|};
  silent "pragma" ~path:"lib/workload/driver.ml" ~code:"SL008"
    "(* sfslint: allow SL008 — progress line for interactive debugging *)\nlet f () = print_newline ()"

let test_sl009 () =
  fires "String.map on wire path" ~path:"lib/crypto/arc4.ml" ~code:"SL009"
    {|let f s = String.map (fun c -> Char.chr (Char.code c lxor 1)) s|};
  fires "String.init keystream" ~path:"lib/crypto/prng.ml" ~code:"SL009"
    {|let f n g = String.init n (fun _ -> Char.chr (g ()))|};
  fires "String.mapi" ~path:"lib/proto/channel.ml" ~code:"SL009"
    {|let f s = String.mapi (fun _ c -> c) s|};
  (* Concatenation and String.sub are flagged only in the four hot
     files, where per-message copies cost a figure. *)
  fires "concat in hot file" ~path:"lib/proto/channel.ml" ~code:"SL009"
    {|let f a b = a ^ b|};
  fires "String.sub in hot file" ~path:"lib/crypto/mac.ml" ~code:"SL009"
    {|let f s = String.sub s 0 20|};
  silent "concat off the hot path" ~path:"lib/proto/hostid.ml" ~code:"SL009"
    {|let f a b = a ^ b|};
  silent "String.sub off the hot path" ~path:"lib/crypto/srp.ml" ~code:"SL009"
    {|let f s = String.sub s 0 20|};
  silent "outside crypto/proto" ~path:"lib/xdr/xdr.ml" ~code:"SL009"
    {|let f s = String.map (fun c -> c) s|};
  silent "block-wise Bytes building" ~path:"lib/crypto/arc4.ml" ~code:"SL009"
    {|let f n = Bytes.unsafe_to_string (Bytes.create n)|};
  silent "pragma" ~path:"lib/proto/channel.ml" ~code:"SL009"
    "(* sfslint: allow SL009 — one-time counter names at create *)\nlet f a b = a ^ b"

let test_sl010 () =
  fires "Simnet.call in the SFS client" ~path:"lib/core/client.ml" ~code:"SL010"
    {|let f conn wire = Simnet.call conn wire|};
  fires "fully qualified" ~path:"lib/nfs/nfs_client.ml" ~code:"SL010"
    {|let f conn wire = Sfs_net.Simnet.call conn wire|};
  silent "call_async is the point" ~path:"lib/core/client.ml" ~code:"SL010"
    {|let f conn wire = Simnet.call_async conn wire|};
  silent "call_measured feeds the mux" ~path:"lib/nfs/nfs_client.ml" ~code:"SL010"
    {|let f conn wire = Simnet.call_measured conn wire|};
  silent "outside the client hot paths" ~path:"lib/core/server.ml" ~code:"SL010"
    {|let f conn wire = Simnet.call conn wire|};
  silent "waived setup exchange" ~path:"lib/core/client.ml" ~code:"SL010"
    "(* sfslint: allow SL010 — key negotiation is a serial handshake *)\nlet f conn wire = Simnet.call conn wire"

let test_sl000_pragma_hygiene () =
  fires "no codes" ~path:"lib/core/vfs.ml" ~code:"SL000"
    "(* sfslint: allow *)\nlet x = 1";
  fires "unknown code" ~path:"lib/core/vfs.ml" ~code:"SL000"
    "(* sfslint: allow SL999 — no such rule *)\nlet x = 1";
  fires "missing justification is SL011, not SL000" ~path:"lib/core/vfs.ml"
    ~code:"SL011" "(* sfslint: allow SL001 *)\nlet x = 1";
  fires "unknown directive" ~path:"lib/core/vfs.ml" ~code:"SL000"
    "(* sfslint: disable SL001 — wrong verb *)\nlet x = 1";
  silent "well-formed pragma" ~path:"lib/core/vfs.ml" ~code:"SL000"
    "(* sfslint: allow SL001 — a justified waiver *)\nlet x = 1";
  (* A malformed pragma never suppresses. *)
  fires "malformed pragma does not suppress" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "(* sfslint: allow SL001 *)\nlet f ~tag x = tag = x"

let test_sl011_bare_waiver () =
  fires "bare pragma is its own violation" ~path:"lib/core/vfs.ml" ~code:"SL011"
    "(* sfslint: allow SL003 *)\nlet x = 1";
  fires "bare pragma with several codes" ~path:"lib/core/vfs.ml" ~code:"SL011"
    "(* sfslint: allow SL001 SL002 *)\nlet x = 1";
  silent "justified pragma" ~path:"lib/core/vfs.ml" ~code:"SL011"
    "(* sfslint: allow SL003 — OS entropy is fine in a demo binary *)\nlet x = 1";
  silent "ascii double-dash separator" ~path:"lib/core/vfs.ml" ~code:"SL011"
    "(* sfslint: allow SL003 -- OS entropy is fine in a demo binary *)\nlet x = 1";
  (* The bare pragma does not suppress the violation it names. *)
  fires "bare pragma does not suppress" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "(* sfslint: allow SL001 *)\nlet f ~tag x = tag = x"

let test_sl012_span_bracketing () =
  fires "span_begin with no span_end leaks" ~path:"lib/core/client.ml" ~code:"SL012"
    "let f obs = Obs.span_begin obs ~cat:\"op\" \"read\"";
  fires "qualified span_begin" ~path:"lib/nfs/cachefs.ml" ~code:"SL012"
    "let f obs = Sfs_obs.Obs.span_begin obs ~cat:\"op\" \"read\"";
  (* A span_end anywhere in the same top-level item satisfies the
     heuristic — including on an exception path. *)
  silent "begin/end in the same item" ~path:"lib/core/client.ml" ~code:"SL012"
    "let f obs =\n\
    \  let os = Obs.span_begin obs ~cat:\"op\" \"read\" in\n\
    \  match work () with v -> Obs.span_end os; v | exception e -> Obs.span_end os; raise e";
  (* Closing in a different top-level item does not count: the opener's
     item still leaks on its own paths. *)
  fires "end in a different item" ~path:"lib/core/client.ml" ~code:"SL012"
    "let f obs = Obs.span_begin obs ~cat:\"op\" \"read\"\nlet g os = Obs.span_end os";
  silent "delegation waived with a pragma" ~path:"lib/core/client.ml" ~code:"SL012"
    "(* sfslint: allow SL012 — the mux closes the span at ready time *)\n\
     let f obs = Obs.span_begin obs ~cat:\"op\" \"read\"";
  silent "outside lib/" ~path:"bench/main.ml" ~code:"SL012"
    "let f obs = Obs.span_begin obs ~cat:\"op\" \"read\""

let test_sl013_zero_copy_read_path () =
  fires "Bytes.create in a *_slice binding" ~path:"lib/proto/channel.ml" ~code:"SL013"
    "let open_slice t wire = let buf = Bytes.create 16 in decode buf";
  fires "String.sub in a cache feeder" ~path:"lib/nfs/cachefs.ml" ~code:"SL013"
    "let note_block t h b data = store t h b (String.sub data 0 8192)";
  fires "Bytes.sub_string in the slice codec" ~path:"lib/xdr/xdr.ml" ~code:"SL013"
    "let dec_opaque_slice d = Bytes.sub_string d.data d.pos 8";
  silent "Slice view construction" ~path:"lib/proto/channel.ml" ~code:"SL013"
    "let open_slice t wire = Sfs_util.Slice.make wire ~off:4 ~len:10";
  silent "copy outside the audited bindings" ~path:"lib/proto/channel.ml" ~code:"SL013"
    "let seal t msg = Bytes.create 16";
  silent "copy outside the audited files" ~path:"lib/core/client.ml" ~code:"SL013"
    "let open_slice t wire = Bytes.create 16";
  silent "pragma for an inherent copy" ~path:"lib/proto/channel.ml" ~code:"SL013"
    "let open_slice t wire =\n\
    \  (* sfslint: allow SL013 — fixed-size MAC tag scratch *)\n\
    \  let tag = Bytes.create 20 in\n\
    \  check tag"

let test_enable_disable () =
  let src = "let x = Random.int 10\nlet f ~tag y = tag = y" in
  let all = codes ~path:"lib/core/agent.ml" src in
  Alcotest.(check bool) "both fire by default" true
    (List.mem "SL001" all && List.mem "SL002" all);
  let only2 = codes ~enabled:[ "SL002" ] ~path:"lib/core/agent.ml" src in
  Alcotest.(check bool) "SL001 filtered out" false (List.mem "SL001" only2);
  Alcotest.(check bool) "SL002 kept" true (List.mem "SL002" only2)

let test_engine_robustness () =
  (match Lint.check_source ~path:"lib/core/x.ml" ~source:"let x = (" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error");
  (* Comments, strings and char literals do not confuse the pragma
     scanner: a '"' char literal must not open a string. *)
  silent "char literal then pragma" ~path:"lib/crypto/mac.ml" ~code:"SL001"
    "let q = '\"'\n(* sfslint: allow SL001 — quoting torture test *)\nlet f ~tag x = tag = x";
  (* The JSON report is well-formed enough to carry counts. *)
  let ds = check ~path:"lib/crypto/mac.ml" "let f ~tag x = tag = x" in
  let json = Lint.report_json ~files_checked:1 ds in
  Alcotest.(check bool) "report mentions SL001" true
    (let rec has i =
       i + 5 <= String.length json && (String.sub json i 5 = "SL001" || has (i + 1))
     in
     has 0)

let suite =
  ( "lint",
    [
      Alcotest.test_case "SL001 constant-time comparison" `Quick test_sl001;
      Alcotest.test_case "SL001 pragma handling" `Quick test_sl001_pragma;
      Alcotest.test_case "SL002 prng discipline" `Quick test_sl002;
      Alcotest.test_case "SL003 simulated time" `Quick test_sl003;
      Alcotest.test_case "SL004 total decoders" `Quick test_sl004;
      Alcotest.test_case "SL005 toplevel state" `Quick test_sl005;
      Alcotest.test_case "SL006 unsafe casts" `Quick test_sl006;
      Alcotest.test_case "SL007 interface files" `Quick test_sl007;
      Alcotest.test_case "SL008 stdout silence" `Quick test_sl008;
      Alcotest.test_case "SL009 wire-path string building" `Quick test_sl009;
      Alcotest.test_case "SL010 blocking call on hot path" `Quick test_sl010;
      Alcotest.test_case "SL000 pragma hygiene" `Quick test_sl000_pragma_hygiene;
      Alcotest.test_case "SL011 bare waiver pragma" `Quick test_sl011_bare_waiver;
      Alcotest.test_case "SL012 span bracketing" `Quick test_sl012_span_bracketing;
      Alcotest.test_case "SL013 zero-copy read path" `Quick test_sl013_zero_copy_read_path;
      Alcotest.test_case "enable/disable filtering" `Quick test_enable_disable;
      Alcotest.test_case "engine robustness" `Quick test_engine_robustness;
    ] )
