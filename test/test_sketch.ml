(* Tests for Sketch: the mergeable log-linear quantile sketch.

   The laws under test are the ones the fleet-scale aggregation leans
   on (DESIGN.md §13): merge is associative/commutative and models
   list concatenation, the sketch is a pure function of the multiset
   of observations (any input order), quantiles stay within the
   documented rank-error bound of the exact order statistic, and the
   JSON export is byte-identical across runs. *)

module Sketch = Sfs_obs.Sketch

(* Observations in the range the sketch is used for: latencies from
   sub-µs to tens of seconds. *)
let gen_obs = QCheck.list_of_size (QCheck.Gen.int_range 0 200) (QCheck.int_range 0 50_000_000)

let prop_merge_commutative =
  QCheck.Test.make ~name:"sketch merge commutative" ~count:200 (QCheck.pair gen_obs gen_obs)
    (fun (a, b) ->
      Sketch.equal
        (Sketch.merge (Sketch.of_observations a) (Sketch.of_observations b))
        (Sketch.merge (Sketch.of_observations b) (Sketch.of_observations a)))

let prop_merge_associative =
  QCheck.Test.make ~name:"sketch merge associative" ~count:200
    (QCheck.triple gen_obs gen_obs gen_obs) (fun (a, b, c) ->
      let s = Sketch.of_observations in
      Sketch.equal
        (Sketch.merge (Sketch.merge (s a) (s b)) (s c))
        (Sketch.merge (s a) (Sketch.merge (s b) (s c))))

let prop_merge_models_concat =
  QCheck.Test.make ~name:"sketch merge models concat" ~count:200 (QCheck.pair gen_obs gen_obs)
    (fun (a, b) ->
      Sketch.equal
        (Sketch.merge (Sketch.of_observations a) (Sketch.of_observations b))
        (Sketch.of_observations (a @ b)))

(* The sketch is a function of the multiset: permuting the input
   changes nothing, including the serialized form. *)
let prop_order_independent =
  QCheck.Test.make ~name:"sketch input-order independent" ~count:200 gen_obs (fun xs ->
      let shuffled = List.sort compare xs in
      let a = Sketch.of_observations xs and b = Sketch.of_observations shuffled in
      Sketch.equal a b && String.equal (Sketch.to_json a) (Sketch.to_json b))

(* Rank-error bound against the exact oracle: for the ceil(q*n)-th
   order statistic o (1-indexed, sorted), the reported quantile is
   >= o and <= o + o/16 + 1 — the upper edge of o's bucket. *)
let prop_rank_error_bound =
  QCheck.Test.make ~name:"sketch rank-error bound vs sorted oracle" ~count:300
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 1 200) (QCheck.int_range 0 50_000_000))
       (QCheck.float_range 0.0 1.0))
    (fun (xs, q) ->
      let t = Sketch.of_observations xs in
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
      let oracle = List.nth sorted (rank - 1) in
      let est = Sketch.quantile t q in
      est >= oracle && est <= oracle + (oracle / 16) + 1)

(* The documented bucket geometry: small values are exact, larger ones
   round up to their bucket edge with <= 1/16 relative slack. *)
let prop_bucket_upper =
  QCheck.Test.make ~name:"sketch bucket upper edge bound" ~count:500
    (QCheck.int_range 0 1_000_000_000) (fun v ->
      let u = Sketch.bucket_upper (Sketch.bucket_of v) in
      u >= v && (v < 32 || u <= v + (v / 16) + 1))

let test_exact_small () =
  (* Values below 32 are exact: the quantile returns them verbatim. *)
  let t = Sketch.of_observations [ 3; 7; 7; 31 ] in
  Testkit.check_int "p25" 3 (Sketch.quantile t 0.25);
  Testkit.check_int "p50" 7 (Sketch.quantile t 0.5);
  Testkit.check_int "p100" 31 (Sketch.quantile t 1.0);
  Testkit.check_int "count" 4 (Sketch.count t);
  Testkit.check_int "sum" 48 (Sketch.sum t)

let test_empty () =
  let t = Sketch.create () in
  Testkit.check_int "empty quantile" 0 (Sketch.quantile t 0.99);
  Testkit.check_string "empty json" "{\"count\":0,\"sum\":0,\"buckets\":[]}" (Sketch.to_json t)

let test_json_two_runs () =
  (* Two identical builds export byte-identical JSON (the determinism
     contract every BENCH export inherits). *)
  let build () =
    let t = Sketch.create () in
    List.iter (Sketch.observe t) [ 12; 900; 44_100; 7; 7; 1_000_000; 63 ];
    Sketch.to_json t
  in
  Testkit.check_string "byte-identical" (build ()) (build ())

let suite =
  ( "sketch",
    [
      Alcotest.test_case "exact small values" `Quick test_exact_small;
      Alcotest.test_case "empty sketch" `Quick test_empty;
      Alcotest.test_case "two-run byte-identical JSON" `Quick test_json_two_runs;
      QCheck_alcotest.to_alcotest prop_merge_commutative;
      QCheck_alcotest.to_alcotest prop_merge_associative;
      QCheck_alcotest.to_alcotest prop_merge_models_concat;
      QCheck_alcotest.to_alcotest prop_order_independent;
      QCheck_alcotest.to_alcotest prop_rank_error_bound;
      QCheck_alcotest.to_alcotest prop_bucket_upper;
    ] )
