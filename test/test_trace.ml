(* Tests for the causal-tracing and critical-path layer (DESIGN.md §13).

   The contracts: (1) every captured op's segments sum exactly to its
   wall time on the simulated clock — the decomposition telescopes, no
   overlap is double-counted and nothing is dropped; (2) the crypto
   segments reconcile against the Channel byte counters, per direction;
   (3) two same-seed runs export byte-identical traces, JSONL and
   critical-path JSON; (4) server-side spans adopt the client op's
   trace id over the wire. *)

module Obs = Sfs_obs.Obs
module Trace = Sfs_obs.Trace
module Stacks = Sfs_workload.Stacks
module Driver = Sfs_workload.Driver

(* A fig5-style workload on a fresh world: a writeback burst, a commit,
   metadata traffic and a pipelined sequential read (window 16 is the
   Stacks default). *)
let run_workload (w : Stacks.world) : unit =
  let path = w.Stacks.workdir ^ "/trace-probe" in
  Driver.write_file w path (Driver.content ~seed:7 (256 * 1024));
  ignore (Driver.stat w path);
  ignore (Driver.read_file w path);
  ignore (Driver.read_at w path ~off:0 ~count:65536);
  Driver.unlink w path

let segments_sum (s : Obs.cp_sample) : float =
  List.fold_left (fun acc (_, v) -> acc +. v) 0.0 s.Obs.cp_segments

let test_segments_telescope () =
  let w = Stacks.make Stacks.Sfs in
  run_workload w;
  let samples = Obs.cp_samples w.Stacks.obs in
  Alcotest.(check bool) "captured ops" true (List.length samples > 10);
  List.iter
    (fun s ->
      let sum = segments_sum s in
      let tol = 1e-6 +. (1e-9 *. Float.abs s.Obs.cp_wall_us) in
      if Float.abs (sum -. s.Obs.cp_wall_us) > tol then
        Alcotest.failf "op %s: segments sum %.9f != wall %.9f" s.Obs.cp_op sum s.Obs.cp_wall_us;
      (* No segment may be negative: a negative residual would mean the
         decomposition double-counted an overlap somewhere else. *)
      List.iter
        (fun (k, v) ->
          if v < -1e-9 then Alcotest.failf "op %s: negative segment %s = %.9f" s.Obs.cp_op k v)
        s.Obs.cp_segments)
    samples

(* Crypto reconciliation: over a span of clean traffic, the per-sample
   integer crypto attributions must sum exactly to what the Channel
   counters accumulated — same ints, same rounding, per direction. *)
let test_crypto_reconciles () =
  let w = Stacks.make Stacks.Sfs in
  let counter name = Obs.snap_counter (Obs.snapshot w.Stacks.obs) name in
  let n0 = List.length (Obs.cp_samples w.Stacks.obs) in
  let up0 = counter "channel.client.crypto_us_out" in
  let down0 = counter "channel.server.crypto_us_out" in
  run_workload w;
  let fresh =
    List.filteri (fun i _ -> i >= n0) (Obs.cp_samples w.Stacks.obs)
  in
  Alcotest.(check bool) "fresh samples" true (List.length fresh > 10);
  let up_sum = List.fold_left (fun a s -> a + s.Obs.cp_crypto_up_ctr) 0 fresh in
  let down_sum = List.fold_left (fun a s -> a + s.Obs.cp_crypto_down_ctr) 0 fresh in
  Testkit.check_int "request seals reconcile" (counter "channel.client.crypto_us_out" - up0) up_sum;
  Testkit.check_int "reply seals reconcile" (counter "channel.server.crypto_us_out" - down0)
    down_sum

(* Idle-harvest reconciliation (DESIGN.md §14): every microsecond the
   mux donates to keystream precomputation shows up, to the same
   integer truncation, in the channel's precomputed counter — the two
   ledgers describe one transfer.  Claims draw on that bank and can
   never exceed it. *)
let test_keystream_ledger_reconciles () =
  let w = Stacks.make Stacks.Sfs in
  let counter name = Obs.snap_counter (Obs.snapshot w.Stacks.obs) name in
  let idle0 = counter "mux.idle_us_used" in
  let pre0 = counter "channel.client.keystream_precomputed_us" in
  let used0 = counter "channel.client.keystream_claimed_us" in
  run_workload w;
  let idle = counter "mux.idle_us_used" - idle0 in
  let pre = counter "channel.client.keystream_precomputed_us" - pre0 in
  let used = counter "channel.client.keystream_claimed_us" - used0 in
  Alcotest.(check bool) "idle time was donated" true (idle > 0);
  Testkit.check_int "donated idle equals banked keystream" idle pre;
  Alcotest.(check bool) "claims drawn from the bank" true (used > 0);
  Alcotest.(check bool) "claims never exceed the bank" true (used <= pre)

let test_server_adopts_trace () =
  let w = Stacks.make Stacks.Sfs in
  run_workload w;
  let spans = Obs.spans w.Stacks.obs in
  (* Cachefs entry points are trace roots... *)
  let roots = List.filter (fun s -> s.Obs.sp_trace > 0 && s.Obs.sp_parent = 0) spans in
  Alcotest.(check bool) "trace roots exist" true (roots <> []);
  (* ...and server-side NFS dispatch spans join those traces as remote
     children (the wire annex round-tripped). *)
  let remote = List.filter (fun s -> s.Obs.sp_remote && s.Obs.sp_trace > 0) spans in
  Alcotest.(check bool) "remote spans exist" true (remote <> []);
  let root_traces = List.map (fun s -> s.Obs.sp_trace) roots in
  List.iter
    (fun s ->
      if not (List.mem s.Obs.sp_trace root_traces) then
        Alcotest.failf "remote span %s has orphan trace %d" s.Obs.sp_name s.Obs.sp_trace)
    remote;
  (* Distinct top-level ops get distinct traces. *)
  let module IS = Set.Make (Int) in
  Alcotest.(check int) "root trace ids unique" (List.length roots)
    (IS.cardinal (IS.of_list root_traces))

let test_two_runs_byte_identical () =
  let run () =
    let w = Stacks.make Stacks.Sfs in
    run_workload w;
    let regs = [ ("world", w.Stacks.obs) ] in
    let cp = match Trace.critical_path_json regs with Some j -> j | None -> "" in
    (Obs.chrome_trace ~ops_only:true regs, Obs.jsonl_of regs, cp)
  in
  let t1, j1, c1 = run () in
  let t2, j2, c2 = run () in
  Testkit.check_string "chrome trace" t1 t2;
  Testkit.check_string "jsonl" j1 j2;
  Alcotest.(check bool) "critical path present" true (c1 <> "");
  Testkit.check_string "critical path json" c1 c2

(* The aggregated view: per-op quantiles come from the wall-time
   sketch, and the mean segment map preserves the telescoping sum. *)
let test_per_op_aggregation () =
  let w = Stacks.make Stacks.Sfs in
  run_workload w;
  let aggs = Trace.per_op w.Stacks.obs in
  Alcotest.(check bool) "aggregated op types" true (List.length aggs > 2);
  List.iter
    (fun (a : Trace.op_agg) ->
      Alcotest.(check bool) (a.Trace.oa_op ^ " count") true (a.Trace.oa_count > 0);
      let seg = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 a.Trace.oa_segments in
      let tol = 1e-6 +. (1e-9 *. Float.abs a.Trace.oa_wall_us) in
      Alcotest.(check bool)
        (a.Trace.oa_op ^ " segments telescope in aggregate")
        true
        (Float.abs (seg -. a.Trace.oa_wall_us) <= tol))
    aggs

let suite =
  ( "trace",
    [
      Alcotest.test_case "segments telescope to wall time" `Quick test_segments_telescope;
      Alcotest.test_case "crypto segments reconcile with counters" `Quick test_crypto_reconciles;
      Alcotest.test_case "keystream ledger reconciles" `Quick test_keystream_ledger_reconciles;
      Alcotest.test_case "server adopts client trace" `Quick test_server_adopts_trace;
      Alcotest.test_case "two runs byte-identical" `Quick test_two_runs_byte_identical;
      Alcotest.test_case "per-op aggregation" `Quick test_per_op_aggregation;
    ] )
